(* The model checker: configuration graphs, valence, the bivalency
   toolkit, and exhaustive task solvability — including the experiments
   that mechanize the paper's positive theorems on small instances. *)

open Lbsa

(* --- graph construction ----------------------------------------------- *)

let test_graph_counts_tiny () =
  (* One process, two steps: write then decide.  Graph: 3 nodes chain. *)
  let name = "wd" in
  let machine =
    Machine.make ~name
      ~init:(fun ~pid:_ ~input -> Value.pair (Value.sym "w", input))
      ~delta:(fun ~pid state ->
        match state with
        | { Value.node = Pair ({ node = Sym "w"; _ }, x); _ } ->
          Machine.invoke 0 (Register.write x) (fun _ -> Value.pair (Value.sym "d", x))
        | { Value.node = Pair ({ node = Sym "d"; _ }, x); _ } -> Machine.Decide x
        | s -> Machine.bad_state ~machine:name ~pid s)
  in
  let graph =
    Cgraph.build ~machine ~specs:[| Register.spec () |] ~inputs:[| Value.int 1 |] ()
  in
  Alcotest.(check int) "3 nodes" 3 (Cgraph.n_nodes graph);
  Alcotest.(check int) "2 edges" 2 (Cgraph.n_edges graph);
  Alcotest.(check bool) "complete" true (not graph.Cgraph.truncated)

let test_graph_nondet_branches () =
  (* Two processes each propose once to a 2-SA object: the second propose
     forks on the adversary's choice. *)
  let machine = Consensus_protocols.one_shot ~name:"sa" ~mk_op:Sa2.propose () in
  let graph =
    Cgraph.build ~machine ~specs:[| Sa2.spec () |]
      ~inputs:[| Value.int 0; Value.int 1 |] ()
  in
  (* Some node must have two out-edges for the same pid (the nondet
     fork). *)
  let forked = ref false in
  Cgraph.iter_nodes
    (fun id _ ->
      let es = Cgraph.out_edges graph id in
      List.iter
        (fun pid ->
          if
            List.length (List.filter (fun (e : Cgraph.edge) -> e.pid = pid) es)
            >= 2
          then forked := true)
        [ 0; 1 ])
    graph;
  Alcotest.(check bool) "nondeterministic fork present" true !forked

let test_graph_truncation () =
  let machine, specs = Candidates.flp_spin in
  let graph =
    Cgraph.build ~max_states:5 ~machine ~specs
      ~inputs:[| Value.int 0; Value.int 1 |] ()
  in
  Alcotest.(check bool) "truncated" true graph.Cgraph.truncated;
  match Cgraph.require_complete graph with
  | exception Cgraph.Truncated -> ()
  | _ -> Alcotest.fail "require_complete must raise"

let test_scc_on_spin_graph () =
  (* flp_spin's graph has cycles (the spin loops). *)
  let machine, specs = Candidates.flp_spin in
  let graph =
    Cgraph.build ~machine ~specs ~inputs:[| Value.int 0; Value.int 1 |] ()
  in
  Alcotest.(check bool) "cycle found" true (Solvability.any_cycle graph <> None);
  (* The spin loops are self-loops, so components are singletons; the
     SCC decomposition must still cover every node exactly once. *)
  let comp, n_comps = Cgraph.scc graph in
  Alcotest.(check int) "component array covers nodes" (Cgraph.n_nodes graph)
    (Array.length comp);
  Alcotest.(check bool) "component ids in range" true
    (Array.for_all (fun c -> c >= 0 && c < n_comps) comp);
  (* A genuinely multi-node SCC: two processes ping-ponging between two
     registers. *)
  let machine, specs = Candidates.consensus_from_pac_retry ~n:2 ~procs:2 in
  let graph =
    Cgraph.build ~machine ~specs ~inputs:[| Value.int 0; Value.int 1 |] ()
  in
  let comp, n_comps = Cgraph.scc graph in
  Alcotest.(check bool) "multi-node SCC exists (livelock ring)" true
    (n_comps < Array.length comp)

(* --- explorer determinism and statistics ------------------------------- *)

let check_same_graph label (g1 : Cgraph.t) (g2 : Cgraph.t) =
  Alcotest.(check int)
    (label ^ ": node count") (Cgraph.n_nodes g1) (Cgraph.n_nodes g2);
  Alcotest.(check int)
    (label ^ ": edge count") (Cgraph.n_edges g1) (Cgraph.n_edges g2);
  Alcotest.(check int) (label ^ ": initial") g1.Cgraph.initial g2.Cgraph.initial;
  for id = 0 to Cgraph.n_nodes g1 - 1 do
    if not (Config.equal (Cgraph.node g1 id) (Cgraph.node g2 id)) then
      Alcotest.failf "%s: node %d differs" label id;
    (* Edge records are pure data (pids, ops, values), so structural
       equality compares them in full, order included. *)
    if Cgraph.out_edges g1 id <> Cgraph.out_edges g2 id then
      Alcotest.failf "%s: out-edges of node %d differ" label id
  done

let test_build_matches_cmap_oracle () =
  (* The rewritten explorer against the seed explorer, on a branchy
     nondeterministic graph and on a consensus graph. *)
  List.iter
    (fun (label, (machine, specs), inputs) ->
      let g = Cgraph.build ~machine ~specs ~inputs () in
      let oracle = Cgraph.build_cmap ~machine ~specs ~inputs () in
      check_same_graph label g oracle)
    [
      ( "2-SA one-shot",
        ( Consensus_protocols.one_shot ~name:"sa" ~mk_op:Sa2.propose (),
          [| Sa2.spec () |] ),
        [| Value.int 0; Value.int 1 |] );
      ( "3-consensus",
        Consensus_protocols.from_consensus_obj ~m:3,
        [| Value.int 0; Value.int 1; Value.int 0 |] );
    ]

let test_build_domain_count_invariant () =
  (* Identical node ids and edges whatever the domain count.  dac5's
     peak frontier exceeds the parallel threshold, so the 4-domain build
     exercises real multi-domain expansion. *)
  let n = 5 in
  let machine = Dac_from_pac.machine ~n and specs = Dac_from_pac.specs ~n in
  let inputs = Array.init n (fun pid -> Value.int (if pid = 0 then 1 else 0)) in
  let g1 = Cgraph.build ~domains:1 ~machine ~specs ~inputs () in
  let g4 = Cgraph.build ~domains:4 ~machine ~specs ~inputs () in
  check_same_graph "domains 1 vs 4" g1 g4;
  Alcotest.(check int) "1-domain stats" 1 (Cgraph.stats g1).Cgraph.domains;
  Alcotest.(check int) "4-domain stats" 4 (Cgraph.stats g4).Cgraph.domains

let test_build_domains_1_2_4_with_oracle () =
  (* Domain counts 1, 2 and 4 on two protocol graphs of different shape
     (branchy consensus-object graph, DAC-from-PAC graph), with the seed
     CMap explorer as a fourth, independently-computed reference. *)
  List.iter
    (fun (label, (machine, specs), inputs) ->
      let oracle = Cgraph.build_cmap ~machine ~specs ~inputs () in
      List.iter
        (fun domains ->
          let g = Cgraph.build ~domains ~machine ~specs ~inputs () in
          check_same_graph (Fmt.str "%s, domains=%d" label domains) g oracle)
        [ 1; 2; 4 ])
    [
      ( "cons:2",
        Consensus_protocols.from_consensus_obj ~m:2,
        [| Value.int 0; Value.int 1 |] );
      ( "dac:3",
        (Dac_from_pac.machine ~n:3, Dac_from_pac.specs ~n:3),
        [| Value.int 1; Value.int 0; Value.int 0 |] );
    ]

let test_truncation_point_domain_invariant () =
  (* A bound small enough to cut the graph mid-exploration: every domain
     count must stop at the same point — same node ids, same edges, same
     truncated flag — or downstream analyses would silently diverge on
     partial graphs. *)
  let machine, specs = (Dac_from_pac.machine ~n:3, Dac_from_pac.specs ~n:3) in
  let inputs = [| Value.int 1; Value.int 0; Value.int 0 |] in
  let g1 = Cgraph.build ~max_states:40 ~domains:1 ~machine ~specs ~inputs () in
  Alcotest.(check bool) "bound actually truncates" true g1.Cgraph.truncated;
  List.iter
    (fun domains ->
      let g =
        Cgraph.build ~max_states:40 ~domains ~machine ~specs ~inputs ()
      in
      Alcotest.(check bool)
        (Fmt.str "domains=%d truncated" domains)
        g1.Cgraph.truncated g.Cgraph.truncated;
      check_same_graph (Fmt.str "truncated, domains 1 vs %d" domains) g1 g)
    [ 2; 4 ]

let test_intern_order_independent_across_processes () =
  (* The cross-process regression for THE ID-NEVER-ORDERS INVARIANT
     (lib/spec/value.ml): run the CLI's [fingerprint] command in two
     fresh processes, the second one interning a thousand junk values
     first so every id the graph's values receive is shifted.  Node ids,
     edge order, truncation and all structural hashes must be byte-for-
     byte identical. *)
  let exe = Filename.concat (Filename.dirname Sys.executable_name)
      (Filename.concat ".." (Filename.concat "bin" "lbsa_cli.exe"))
  in
  if not (Sys.file_exists exe) then
    Alcotest.fail (Fmt.str "CLI executable not found at %s" exe);
  let run warmup =
    let out = Filename.temp_file "lbsa_fp" ".out" in
    let cmd =
      Fmt.str "%s fingerprint -n 3 --intern-warmup %d > %s"
        (Filename.quote exe) warmup (Filename.quote out)
    in
    let rc = Sys.command cmd in
    let ic = open_in out in
    let line = input_line ic in
    close_in ic;
    Sys.remove out;
    Alcotest.(check int) (Fmt.str "warmup=%d exit code" warmup) 0 rc;
    line
  in
  let base = run 0 and shifted = run 1000 in
  Alcotest.(check bool) "fingerprint line non-trivial" true
    (String.length base > String.length "fingerprint=");
  Alcotest.(check string) "fingerprints agree across intern orders" base
    shifted

let test_exploration_stats_sane () =
  let machine, specs = Consensus_protocols.from_consensus_obj ~m:2 in
  let g =
    Cgraph.build ~machine ~specs ~inputs:[| Value.int 0; Value.int 1 |] ()
  in
  let s = Cgraph.stats g in
  Alcotest.(check int) "states = node count" (Cgraph.n_nodes g) s.Cgraph.states;
  Alcotest.(check int) "edges = edge count" (Cgraph.n_edges g) s.Cgraph.edges;
  Alcotest.(check bool) "levels > 0" true (s.Cgraph.levels > 0);
  Alcotest.(check int) "one frontier size per level" s.Cgraph.levels
    (Array.length s.Cgraph.frontier_sizes);
  (* Every node passes through the frontier exactly once. *)
  Alcotest.(check int) "frontier sizes sum to states" s.Cgraph.states
    (Array.fold_left ( + ) 0 s.Cgraph.frontier_sizes);
  Alcotest.(check bool) "peak frontier sane" true
    (s.Cgraph.peak_frontier >= 1 && s.Cgraph.peak_frontier <= s.Cgraph.states);
  Alcotest.(check bool) "wall clock non-negative" true (s.Cgraph.wall_s >= 0.);
  Alcotest.(check bool) "dedup rate in [0,1]" true
    (s.Cgraph.dedup_rate >= 0. && s.Cgraph.dedup_rate <= 1.);
  Alcotest.(check bool) "not truncated" true (not s.Cgraph.truncated)

let test_verdict_carries_stats () =
  let machine, specs = Consensus_protocols.from_consensus_obj ~m:2 in
  let v =
    Solvability.check_consensus ~machine ~specs
      ~inputs:[| Value.int 0; Value.int 1 |] ()
  in
  match v.Solvability.stats with
  | Some s ->
    Alcotest.(check int) "stats states = verdict states" v.Solvability.states
      s.Cgraph.states
  | None -> Alcotest.fail "verdict carries no exploration stats"

(* --- valence ----------------------------------------------------------- *)

let consensus_2cons_graph inputs =
  let machine, specs = Consensus_protocols.from_consensus_obj ~m:2 in
  let graph = Cgraph.build ~machine ~specs ~inputs () in
  (graph, Valence.analyze graph, machine, specs)

let test_initial_config_bivalent () =
  (* With inputs 0,1 and a 2-consensus object, the schedule decides who
     proposes first, so the initial configuration is bivalent. *)
  let graph, a, _, _ = consensus_2cons_graph [| Value.int 0; Value.int 1 |] in
  Alcotest.(check bool) "initial bivalent" true
    (Valence.is_bivalent a graph.Cgraph.initial)

let test_same_inputs_univalent () =
  (* With equal inputs, validity forces 0-valence everywhere. *)
  let graph, a, _, _ = consensus_2cons_graph [| Value.int 0; Value.int 0 |] in
  Alcotest.(check bool) "0-valent" true
    (Valence.is_valent a graph.Cgraph.initial (Value.int 0))

let test_decided_configs_univalent () =
  let graph, a, _, _ = consensus_2cons_graph [| Value.int 0; Value.int 1 |] in
  Cgraph.iter_nodes
    (fun id config ->
      match Config.decisions config with
      | d :: _ ->
        Alcotest.(check bool) "decided node is d-valent" true
          (Valence.is_valent a id d)
      | [] -> ())
    graph

(* The condensation-pass valence against the seed worklist fixpoint: the
   two analyses must agree on every accessor at every node. *)
let check_valence_agrees label graph =
  let a = Valence.analyze graph in
  let o = Valence.analyze_fixpoint graph in
  for id = 0 to Cgraph.n_nodes graph - 1 do
    let ca = Valence.classify a id and co = Valence.classify o id in
    if ca <> co then
      Alcotest.failf "%s: node %d classified %a, oracle says %a" label id
        Valence.pp_classification ca Valence.pp_classification co;
    if
      not
        (List.equal Value.equal
           (Valence.decision_set a id)
           (Valence.decision_set o id))
    then Alcotest.failf "%s: node %d decision sets differ" label id;
    if Valence.abort_reachable a id <> Valence.abort_reachable o id then
      Alcotest.failf "%s: node %d abort reachability differs" label id
  done

let test_valence_matches_fixpoint_oracle () =
  (* The bench graphs, plus the cyclic candidates: flp_spin (self-loop
     spins) and pac-retry consensus (a multi-node livelock SCC), where
     the condensation pass actually has non-singleton components to
     collapse. *)
  List.iter
    (fun (label, (machine, specs), inputs) ->
      check_valence_agrees label (Cgraph.build ~machine ~specs ~inputs ()))
    [
      ( "cons:2",
        Consensus_protocols.from_consensus_obj ~m:2,
        [| Value.int 0; Value.int 1 |] );
      ( "cons:3",
        Consensus_protocols.from_consensus_obj ~m:3,
        [| Value.int 0; Value.int 1; Value.int 0 |] );
      ( "dac:3",
        (Dac_from_pac.machine ~n:3, Dac_from_pac.specs ~n:3),
        [| Value.int 1; Value.int 0; Value.int 0 |] );
      ("flp_spin (cyclic)", Candidates.flp_spin, [| Value.int 0; Value.int 1 |]);
      ( "pac-retry (livelock SCC)",
        Candidates.consensus_from_pac_retry ~n:2 ~procs:2,
        [| Value.int 0; Value.int 1 |] );
    ]

let test_valence_matches_oracle_randomized () =
  (* Randomized input vectors drive the same machines through different
     graph shapes (decided sinks move, abort sets change); ten seeded
     draws per machine. *)
  let prng = Prng.create 2026 in
  for trial = 1 to 10 do
    let inputs = Array.init 3 (fun _ -> Value.int (Prng.int prng 2)) in
    let machine, specs =
      if Prng.bool prng then
        (Dac_from_pac.machine ~n:3, Dac_from_pac.specs ~n:3)
      else Consensus_protocols.from_consensus_obj ~m:3
    in
    check_valence_agrees
      (Fmt.str "randomized trial %d (%s)" trial machine.Machine.name)
      (Cgraph.build ~machine ~specs ~inputs ())
  done

let test_valence_summary_consistent () =
  let graph, a, _, _ = consensus_2cons_graph [| Value.int 0; Value.int 1 |] in
  let s = Valence.summarize a in
  Alcotest.(check int) "counts partition nodes" (Cgraph.n_nodes graph)
    (s.Valence.n_bivalent + s.Valence.n_univalent + s.Valence.n_undecided);
  Alcotest.(check bool) "some bivalent" true (s.Valence.n_bivalent > 0);
  Alcotest.(check bool) "some univalent" true (s.Valence.n_univalent > 0)

(* --- bivalency toolkit: the proof's moves on a real protocol ---------- *)

let test_critical_configuration_structure () =
  (* Claims 5.2.2/5.2.3 mechanized on consensus-from-2-consensus among 2
     processes: critical configurations exist, and at each one every
     running process is poised on the same non-register object (the
     2-consensus object). *)
  let graph, a, machine, specs =
    consensus_2cons_graph [| Value.int 0; Value.int 1 |]
  in
  let reports = Bivalency.report_critical ~machine ~specs graph a in
  Alcotest.(check bool) "critical configurations exist" true (reports <> []);
  List.iter
    (fun (r : Bivalency.critical_report) ->
      match r.Bivalency.object_name with
      | Some name -> Alcotest.(check string) "poised on the consensus object"
          "2-consensus" name
      | None -> Alcotest.fail "critical config without common poised object")
    reports

let test_flp_trichotomy_on_register_candidates () =
  (* The FLP trichotomy, finitized.  A register-only consensus candidate
     either (i) has schedule-dependent decisions and then violates
     agreement (flp-write-read), or (ii) is safe but has a
     schedule-independent decision (flp-spin decides the minimum: the
     initial configuration is univalent) and pays with non-wait-free
     spinning. *)
  let machine, specs = Candidates.flp_write_read in
  let graph =
    Cgraph.build ~machine ~specs ~inputs:[| Value.int 0; Value.int 1 |] ()
  in
  let a = Valence.analyze graph in
  Alcotest.(check bool) "write-read: initial bivalent" true
    (Valence.is_bivalent a graph.Cgraph.initial);
  let machine, specs = Candidates.flp_spin in
  let graph =
    Cgraph.build ~machine ~specs ~inputs:[| Value.int 0; Value.int 1 |] ()
  in
  let a = Valence.analyze graph in
  Alcotest.(check bool) "spin: initial 0-valent (always the minimum)" true
    (Valence.is_valent a graph.Cgraph.initial (Value.int 0))

let test_bivalence_maintainable_over_bare_pac () =
  (* The FLP adversary survives over a bare 2-PAC object: the retry
     protocol's initial configuration is bivalent and every reachable
     bivalent configuration has a bivalent successor, so the adversary
     can avoid a decision forever (the livelock the paper's ⊥ responses
     create).  Evidence that an n-PAC object alone does not raise the
     consensus number above 1. *)
  let machine, specs = Candidates.consensus_from_pac_retry ~n:2 ~procs:2 in
  let graph =
    Cgraph.build ~machine ~specs ~inputs:[| Value.int 0; Value.int 1 |] ()
  in
  let a = Valence.analyze graph in
  Alcotest.(check bool) "initial bivalent" true
    (Valence.is_bivalent a graph.Cgraph.initial);
  match Bivalency.bivalence_maintainable a graph with
  | Ok () -> ()
  | Error id -> Alcotest.failf "bivalent dead-end at node %d" id

let test_consensus_object_breaks_bivalence_maintenance () =
  (* In contrast, over a 2-consensus object the bivalence is NOT
     maintainable: critical configurations are dead-ends into
     univalence.  (This is exactly why consensus is solvable there.) *)
  let graph, a, _, _ = consensus_2cons_graph [| Value.int 0; Value.int 1 |] in
  match Bivalency.bivalence_maintainable a graph with
  | Ok () -> Alcotest.fail "bivalence should not be maintainable"
  | Error _ -> ()

let test_dac_aborts_are_0_valent () =
  (* Claim 4.2.2 on Algorithm 2 with the paper's canonical inputs
     (p has 1, everyone else 0): any configuration where p aborted can
     only reach decision 0. *)
  let n = 3 in
  let machine = Dac_from_pac.machine ~n in
  let specs = Dac_from_pac.specs ~n in
  let inputs = [| Value.int 1; Value.int 0; Value.int 0 |] in
  let graph = Cgraph.build ~machine ~specs ~inputs () in
  let a = Valence.analyze graph in
  (match Bivalency.aborts_are_0_valent a graph with
  | Ok () -> ()
  | Error id -> Alcotest.failf "abort-yet-not-0-valent at node %d" id);
  (* Claim 4.2.4: the initial configuration I is bivalent. *)
  Alcotest.(check bool) "I bivalent" true
    (Valence.is_bivalent a graph.Cgraph.initial)

let test_poised_op_names_at_criticals () =
  (* Claims 5.2.3-5.2.5 fine structure on the solvable instance:
     consensus among m over one (n,m)-PAC (via PROPOSEC).  At every
     critical configuration, all processes are poised on the SAME
     operation name (proposeC) on the SAME object — the consensus facet,
     which is exactly where Claim 5.2.5 says the decision must happen. *)
  let machine, specs = Consensus_protocols.from_pac_nm ~n:2 ~m:2 in
  let graph =
    Cgraph.build ~machine ~specs ~inputs:[| Value.int 0; Value.int 1 |] ()
  in
  let a = Valence.analyze graph in
  let criticals = Bivalency.critical_configurations a graph in
  Alcotest.(check bool) "criticals exist" true (criticals <> []);
  List.iter
    (fun node ->
      match
        Bivalency.common_poised_op_name ~machine (Cgraph.node graph node)
      with
      | Some (0, "proposeC") -> ()
      | Some (obj, name) ->
        Alcotest.failf "node %d poised on obj%d.%s, expected proposeC" node
          obj name
      | None -> Alcotest.failf "node %d: mixed poised steps" node)
    criticals;
  (* Contrapositive over a bare PAC: the retry protocol has NO critical
     configuration at all (Claim 5.2.8's impossibility shape: the PAC
     cannot host the decision point). *)
  let machine, specs = Candidates.consensus_from_pac_retry ~n:2 ~procs:2 in
  let graph =
    Cgraph.build ~machine ~specs ~inputs:[| Value.int 0; Value.int 1 |] ()
  in
  let a = Valence.analyze graph in
  Alcotest.(check (list int)) "no critical configuration over a bare PAC" []
    (Bivalency.critical_configurations a graph)

let test_poised_reporting () =
  let machine, specs = Consensus_protocols.from_consensus_obj ~m:2 in
  let c =
    Config.initial ~machine ~specs ~inputs:[| Value.int 0; Value.int 1 |]
  in
  (match Bivalency.poised ~machine c with
  | [ (0, Some 0); (1, Some 0) ] -> ()
  | other ->
    Alcotest.failf "unexpected poised result (%d entries)" (List.length other));
  Alcotest.(check (option int)) "common object" (Some 0)
    (Bivalency.common_poised_object ~machine c)

(* --- solvability: the paper's positive theorems, exhaustively --------- *)

let test_theorem_4_1_exhaustive () =
  (* Theorem 4.1 for n = 2 and n = 3: Algorithm 2 solves n-DAC, checked
     over all schedules, for all binary inputs. *)
  List.iter
    (fun n ->
      let machine = Dac_from_pac.machine ~n in
      let specs = Dac_from_pac.specs ~n in
      let verdict =
        Solvability.for_all_inputs
          (fun inputs -> Solvability.check_dac ~machine ~specs ~inputs ())
          (Dac.binary_inputs n)
      in
      if not verdict.Solvability.ok then
        Alcotest.failf "n=%d: %a" n Solvability.pp_verdict verdict)
    [ 2; 3 ]

let test_for_all_inputs_domains_agree () =
  (* The parallel fan-out's contract: the verdict — including WHICH
     failing vector is reported — is identical for any domain count.
     First on a real sweep (dac:3 solves DAC on all 8 binary vectors, so
     every domain count must return the same passing verdict for the
     LAST vector), then on synthetic checks failing at chosen indices
     (the fan-out must report the lowest failing index even when a
     later-failing vector finishes first in another domain). *)
  let machine = Dac_from_pac.machine ~n:3 in
  let specs = Dac_from_pac.specs ~n:3 in
  let family = Dac.binary_inputs 3 in
  let sweep d =
    Solvability.for_all_inputs ~domains:d
      (fun inputs -> Solvability.check_dac ~domains:1 ~machine ~specs ~inputs ())
      family
  in
  let reference = sweep 1 in
  Alcotest.(check bool) "dac:3 family passes" true reference.Solvability.ok;
  List.iter
    (fun d ->
      let v = sweep d in
      Alcotest.(check bool)
        (Fmt.str "domains=%d: same ok" d)
        reference.Solvability.ok v.Solvability.ok;
      Alcotest.(check bool)
        (Fmt.str "domains=%d: same reported vector" d)
        true
        (Array.for_all2 Value.equal reference.Solvability.inputs
           v.Solvability.inputs))
    [ 2; 4 ];
  let vectors = Array.of_list family in
  List.iter
    (fun failing ->
      let synthetic inputs =
        let i = ref 0 in
        Array.iteri (fun j v -> if Array.for_all2 Value.equal v inputs then i := j) vectors;
        {
          Solvability.ok = not (List.mem !i failing);
          outcome = Supervisor.Done;
          inputs;
          states = 1;
          failure = (if List.mem !i failing then Some "synthetic" else None);
          stats = None;
          suspended = None;
        }
      in
      let r1 = Solvability.for_all_inputs ~domains:1 synthetic family in
      List.iter
        (fun d ->
          let v = Solvability.for_all_inputs ~domains:d synthetic family in
          Alcotest.(check bool)
            (Fmt.str "synthetic %s, domains=%d: same ok"
               (String.concat "," (List.map string_of_int failing))
               d)
            r1.Solvability.ok v.Solvability.ok;
          Alcotest.(check bool)
            (Fmt.str "synthetic %s, domains=%d: lowest failing vector"
               (String.concat "," (List.map string_of_int failing))
               d)
            true
            (Array.for_all2 Value.equal r1.Solvability.inputs
               v.Solvability.inputs))
        [ 2; 4 ])
    [ []; [ 7 ]; [ 3; 5 ]; [ 6; 2 ]; [ 0; 1; 2; 3; 4; 5; 6; 7 ] ]

let test_consensus_solvable_exhaustive () =
  (* m-consensus object solves consensus among m, all schedules, m=2,3. *)
  List.iter
    (fun m ->
      let machine, specs = Consensus_protocols.from_consensus_obj ~m in
      let verdict =
        Solvability.for_all_inputs
          (fun inputs -> Solvability.check_consensus ~machine ~specs ~inputs ())
          (Consensus_task.binary_inputs m)
      in
      if not verdict.Solvability.ok then
        Alcotest.failf "m=%d: %a" m Solvability.pp_verdict verdict)
    [ 2; 3 ]

let test_kset_solvable_exhaustive () =
  (* 2-set agreement among 4 processes from two 2-consensus objects
     (partition), distinct inputs, all schedules. *)
  let machine, specs = Kset_protocols.partition ~m:2 ~k:2 in
  let verdict =
    Solvability.check_kset ~machine ~specs ~k:2
      ~inputs:(Kset_task.distinct_inputs 4) ()
  in
  if not verdict.Solvability.ok then
    Alcotest.failf "partition: %a" Solvability.pp_verdict verdict;
  (* 2-set agreement among 4 from one 2-SA object (all object
     nondeterminism explored). *)
  let machine, specs = Kset_protocols.from_sa2 ~k:2 in
  let verdict =
    Solvability.check_kset ~machine ~specs ~k:2
      ~inputs:(Kset_task.distinct_inputs 4) ()
  in
  if not verdict.Solvability.ok then
    Alcotest.failf "2-SA: %a" Solvability.pp_verdict verdict;
  (* And over EVERY input vector from a 3-value domain (27 vectors),
     3 processes. *)
  let verdict =
    Solvability.for_all_inputs
      (fun inputs -> Solvability.check_kset ~machine ~specs ~k:2 ~inputs ())
      (Kset_task.all_inputs ~d:3 3)
  in
  if not verdict.Solvability.ok then
    Alcotest.failf "2-SA all-inputs: %a" Solvability.pp_verdict verdict

let test_classic_constructions_exhaustive () =
  (* Herlihy's level-2 constructions solve 2-consensus, exhaustively. *)
  List.iter
    (fun (machine, specs) ->
      let verdict =
        Solvability.for_all_inputs
          (fun inputs -> Solvability.check_consensus ~machine ~specs ~inputs ())
          (Consensus_task.binary_inputs 2)
      in
      if not verdict.Solvability.ok then
        Alcotest.failf "%s: %a" machine.Machine.name Solvability.pp_verdict
          verdict)
    [
      Consensus_protocols.from_test_and_set ();
      Consensus_protocols.from_queue ();
      Consensus_protocols.from_fetch_and_add ();
      Consensus_protocols.from_swap ();
    ];
  (* CAS and sticky seat 3 processes (they are level-∞). *)
  List.iter
    (fun (machine, specs) ->
      let verdict =
        Solvability.for_all_inputs
          (fun inputs -> Solvability.check_consensus ~machine ~specs ~inputs ())
          (Consensus_task.binary_inputs 3)
      in
      if not verdict.Solvability.ok then
        Alcotest.failf "%s: %a" machine.Machine.name Solvability.pp_verdict
          verdict)
    [
      Consensus_protocols.from_compare_and_swap ();
      Consensus_protocols.from_sticky ();
    ]

let test_candidates_fail_exhaustive () =
  (* flp-write-read: safety violation found. *)
  let machine, specs = Candidates.flp_write_read in
  let verdict =
    Solvability.check_consensus ~machine ~specs
      ~inputs:[| Value.int 0; Value.int 1 |] ()
  in
  Alcotest.(check bool) "flp-write-read fails" false verdict.Solvability.ok;
  (* flp-spin: wait-freedom violation (cycle) found. *)
  let machine, specs = Candidates.flp_spin in
  let verdict =
    Solvability.check_consensus ~machine ~specs
      ~inputs:[| Value.int 0; Value.int 1 |] ()
  in
  Alcotest.(check bool) "flp-spin fails" false verdict.Solvability.ok;
  (* 3-DAC candidates (Theorem 4.2's evidence). *)
  List.iter
    (fun (label, (machine, specs)) ->
      let verdict =
        Solvability.for_all_inputs
          (fun inputs -> Solvability.check_dac ~machine ~specs ~inputs ())
          (Dac.binary_inputs 3)
      in
      Alcotest.(check bool) label false verdict.Solvability.ok)
    [
      ("3dac-sa2-then-cons2 fails", Candidates.dac3_sa2_then_cons2);
      ("3dac-cons2-announce fails", Candidates.dac3_cons2_announce);
    ];
  (* (m+1)-consensus from (n,m)-PAC (Theorem 5.2's evidence). *)
  let machine, specs = Candidates.consensus_m1_from_pac_nm ~n:2 ~m:2 in
  let verdict =
    Solvability.for_all_inputs
      (fun inputs -> Solvability.check_consensus ~machine ~specs ~inputs ())
      (Consensus_task.binary_inputs 3)
  in
  Alcotest.(check bool) "3-consensus from (2,2)-PAC fails" false
    verdict.Solvability.ok

let test_witness_schedule_replays () =
  (* Extract the disagreement witness for flp-write-read and replay its
     schedule through the executor: the violation must reproduce. *)
  let machine, specs = Candidates.flp_write_read in
  let inputs = [| Value.int 0; Value.int 1 |] in
  match Solvability.consensus_witness ~machine ~specs ~inputs () with
  | Solvability.No_witness | Solvability.Search_truncated _ ->
    Alcotest.fail "expected a disagreement witness"
  | Solvability.Witness w ->
    Alcotest.(check bool) "schedule non-empty" true (w.Solvability.schedule <> []);
    let r =
      Executor.run ~machine ~specs ~inputs
        ~scheduler:(Scheduler.fixed w.Solvability.schedule) ()
    in
    (match Consensus_task.check_safety ~inputs r.Executor.final with
    | Error _ -> ()
    | Ok () ->
      Alcotest.failf "witness schedule did not reproduce:@.%a"
        (fun ppf -> Solvability.pp_witness ppf)
        w)

let test_dac_witness () =
  let machine, specs = Candidates.dac3_sa2_then_cons2 in
  let inputs = [| Value.int 1; Value.int 0; Value.int 0 |] in
  match Solvability.dac_witness ~machine ~specs ~inputs () with
  | Solvability.No_witness | Solvability.Search_truncated _ ->
    (* This input vector may be safe; some binary vector must witness. *)
    let witnessed =
      List.exists
        (fun inputs ->
          match Solvability.dac_witness ~machine ~specs ~inputs () with
          | Solvability.Witness _ -> true
          | Solvability.No_witness | Solvability.Search_truncated _ -> false)
        (Dac.binary_inputs 3)
    in
    Alcotest.(check bool) "some input vector witnesses" true witnessed
  | Solvability.Witness w ->
    Alcotest.(check bool) "violation described" true
      (String.length w.Solvability.violation > 0)

let test_hooks_exist_on_consensus_graph () =
  (* Claim 4.2.6's pivot exists concretely: on the 2-consensus protocol
     graph, swapping one p-step and one q-step flips the valence. *)
  let graph, a, _, _ = consensus_2cons_graph [| Value.int 0; Value.int 1 |] in
  let hooks = Bivalency.find_hooks a graph in
  Alcotest.(check bool) "hooks found" true (hooks <> []);
  List.iter
    (fun (h : Bivalency.hook) ->
      Alcotest.(check bool) "opposite valences" false
        (Value.equal h.Bivalency.valent_after_p h.Bivalency.valent_after_qp))
    hooks;
  (* Complementary fact: over a bare 2-PAC no hook exists at all —
     delaying the decisive step never lands in the OPPOSITE valence,
     only back in bivalence (the ⊥ response resets the race).  That is
     exactly why the adversary can maintain bivalence there. *)
  let machine, specs = Candidates.consensus_from_pac_retry ~n:2 ~procs:2 in
  let graph =
    Cgraph.build ~machine ~specs ~inputs:[| Value.int 0; Value.int 1 |] ()
  in
  let a = Valence.analyze graph in
  Alcotest.(check (list string)) "no hooks on the bare PAC graph" []
    (List.map
       (fun h -> Fmt.str "%a" Bivalency.pp_hook h)
       (Bivalency.find_hooks a graph))

let test_shortest_path_initial () =
  let graph, _, _, _ = consensus_2cons_graph [| Value.int 0; Value.int 1 |] in
  Alcotest.(check (option (list int)))
    "empty path to the initial node" (Some [])
    (Option.map Cgraph.schedule_of_path
       (Cgraph.shortest_path graph ~target:graph.Cgraph.initial))

let test_solo_halts_primitive () =
  let machine, specs = Candidates.flp_spin in
  let c = Config.initial ~machine ~specs ~inputs:[| Value.int 0; Value.int 1 |] in
  let accept = function
    | Config.Decided _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "spin protocol: solo run of p0 never halts" false
    (Solvability.solo_halts ~machine ~specs ~pid:0 ~accept c);
  let machine = Dac_from_pac.machine ~n:2 in
  let specs = Dac_from_pac.specs ~n:2 in
  let c = Config.initial ~machine ~specs ~inputs:[| Value.int 1; Value.int 0 |] in
  Alcotest.(check bool) "Algorithm 2: q1 solo decides" true
    (Solvability.solo_halts ~machine ~specs ~pid:1 ~accept c)

let () =
  Alcotest.run "modelcheck"
    [
      ( "graph",
        [
          Alcotest.test_case "tiny chain" `Quick test_graph_counts_tiny;
          Alcotest.test_case "nondet branches" `Quick test_graph_nondet_branches;
          Alcotest.test_case "truncation" `Quick test_graph_truncation;
          Alcotest.test_case "scc on spin graph" `Quick test_scc_on_spin_graph;
          Alcotest.test_case "matches seed CMap oracle" `Quick
            test_build_matches_cmap_oracle;
          Alcotest.test_case "domains 1/2/4 vs CMap oracle" `Quick
            test_build_domains_1_2_4_with_oracle;
          Alcotest.test_case "identical graph for any domain count" `Quick
            test_build_domain_count_invariant;
          Alcotest.test_case "identical truncation point for any domain count"
            `Quick test_truncation_point_domain_invariant;
          Alcotest.test_case "fingerprint independent of intern order" `Quick
            test_intern_order_independent_across_processes;
          Alcotest.test_case "exploration stats sane" `Quick
            test_exploration_stats_sane;
          Alcotest.test_case "verdict carries stats" `Quick
            test_verdict_carries_stats;
        ] );
      ( "valence",
        [
          Alcotest.test_case "initial bivalent" `Quick
            test_initial_config_bivalent;
          Alcotest.test_case "same inputs univalent" `Quick
            test_same_inputs_univalent;
          Alcotest.test_case "decided nodes univalent" `Quick
            test_decided_configs_univalent;
          Alcotest.test_case "condensation matches fixpoint oracle" `Quick
            test_valence_matches_fixpoint_oracle;
          Alcotest.test_case "oracle agreement, randomized inputs" `Quick
            test_valence_matches_oracle_randomized;
          Alcotest.test_case "summary partitions" `Quick
            test_valence_summary_consistent;
        ] );
      ( "bivalency",
        [
          Alcotest.test_case "critical configs (Claims 5.2.2/5.2.3)" `Quick
            test_critical_configuration_structure;
          Alcotest.test_case "FLP trichotomy (registers)" `Quick
            test_flp_trichotomy_on_register_candidates;
          Alcotest.test_case "FLP adversary over bare PAC" `Quick
            test_bivalence_maintainable_over_bare_pac;
          Alcotest.test_case "no maintenance over consensus obj" `Quick
            test_consensus_object_breaks_bivalence_maintenance;
          Alcotest.test_case "DAC aborts 0-valent (Claim 4.2.2)" `Quick
            test_dac_aborts_are_0_valent;
          Alcotest.test_case "poised reporting" `Quick test_poised_reporting;
          Alcotest.test_case "poised op names at criticals (Claim 5.2.x)"
            `Quick test_poised_op_names_at_criticals;
        ] );
      ( "solvability",
        [
          Alcotest.test_case "Theorem 4.1 exhaustive (n=2,3)" `Quick
            test_theorem_4_1_exhaustive;
          Alcotest.test_case "for_all_inputs domains 1/2/4 agree" `Quick
            test_for_all_inputs_domains_agree;
          Alcotest.test_case "consensus exhaustive (m=2,3)" `Quick
            test_consensus_solvable_exhaustive;
          Alcotest.test_case "k-set exhaustive" `Quick
            test_kset_solvable_exhaustive;
          Alcotest.test_case "classic constructions exhaustive" `Quick
            test_classic_constructions_exhaustive;
          Alcotest.test_case "candidates fail" `Quick
            test_candidates_fail_exhaustive;
          Alcotest.test_case "solo_halts primitive" `Quick
            test_solo_halts_primitive;
          Alcotest.test_case "witness schedule replays" `Quick
            test_witness_schedule_replays;
          Alcotest.test_case "DAC witness" `Quick test_dac_witness;
          Alcotest.test_case "hooks (Claim 4.2.6 pivot)" `Quick
            test_hooks_exist_on_consensus_graph;
          Alcotest.test_case "shortest path to initial" `Quick
            test_shortest_path_initial;
        ] );
    ]
