(* Semantics of the object zoo (everything except the PAC family, which
   has its own suite in test_pac.ml). *)

open Lbsa

let v = Alcotest.testable Value.pp Value.equal

(* Run ops against a spec with the first-branch adversary; return
   responses. *)
let run_first spec ops =
  let h, _ = Shistory.run spec ops in
  Shistory.responses h

(* --- registers -------------------------------------------------------- *)

let test_register () =
  let reg = Register.spec () in
  Alcotest.(check (list v)) "read initial" [ Value.nil ]
    (run_first reg [ Register.read ]);
  Alcotest.(check (list v)) "write then read"
    [ Value.unit_; Value.int 3; Value.unit_; Value.int 4 ]
    (run_first reg
       [
         Register.write (Value.int 3);
         Register.read;
         Register.write (Value.int 4);
         Register.read;
       ]);
  let reg5 = Register.spec ~init:(Value.int 5) () in
  Alcotest.(check (list v)) "custom init" [ Value.int 5 ]
    (run_first reg5 [ Register.read ])

let test_register_unknown_op () =
  let reg = Register.spec () in
  match Shistory.run reg [ Op.make "bogus" [] ] with
  | exception Obj_spec.Unknown_operation _ -> ()
  | _ -> Alcotest.fail "expected Unknown_operation"

(* --- m-consensus ------------------------------------------------------ *)

let test_consensus_obj () =
  let c = Consensus_obj.spec ~m:3 () in
  let props = List.map (fun i -> Consensus_obj.propose (Value.int i)) [ 7; 8; 9; 10 ] in
  Alcotest.(check (list v)) "first 3 get first value, then ⊥"
    [ Value.int 7; Value.int 7; Value.int 7; Value.bot ]
    (run_first c props)

let test_consensus_obj_deterministic () =
  let c = Consensus_obj.spec ~m:2 () in
  Alcotest.(check bool) "deterministic" true
    (Obj_spec.is_deterministic_at c c.Obj_spec.initial
       (Consensus_obj.propose (Value.int 1)))

let test_consensus_obj_bad_m () =
  Alcotest.check_raises "m=0 rejected"
    (Invalid_argument "Consensus_obj.spec: m must be >= 1") (fun () ->
      ignore (Consensus_obj.spec ~m:0 ()))

(* --- strong 2-SA ------------------------------------------------------ *)

let test_sa2_branches () =
  let sa = Sa2.spec () in
  let st = sa.Obj_spec.initial in
  (* First propose: single branch, returns own value. *)
  let bs = Obj_spec.branches sa st (Sa2.propose (Value.int 1)) in
  Alcotest.(check int) "first propose one branch" 1 (List.length bs);
  let st1 = (List.hd bs).Obj_spec.next in
  (* Second distinct propose: two branches. *)
  let bs2 = Obj_spec.branches sa st1 (Sa2.propose (Value.int 2)) in
  Alcotest.(check int) "second propose two branches" 2 (List.length bs2);
  let responses =
    List.sort Value.compare (List.map (fun (b : Obj_spec.branch) -> b.response) bs2)
  in
  Alcotest.(check (list v)) "branch responses" [ Value.int 1; Value.int 2 ] responses;
  (* Third value never enters STATE. *)
  let st2 = (List.hd bs2).Obj_spec.next in
  let bs3 = Obj_spec.branches sa st2 (Sa2.propose (Value.int 3)) in
  List.iter
    (fun (b : Obj_spec.branch) ->
      Alcotest.(check bool) "response among first two" true
        (List.mem b.response [ Value.int 1; Value.int 2 ]))
    bs3

let test_sa2_at_most_two_distinct () =
  (* Under a random adversary, 100 proposes yield at most 2 distinct
     responses, each among the first two proposed values. *)
  let sa = Sa2.spec () in
  let prng = Prng.create 42 in
  let choice bs = Prng.int prng (List.length bs) in
  let ops = List.init 100 (fun i -> Sa2.propose (Value.int i)) in
  let h, _ = Shistory.run ~choice sa ops in
  let distinct = Listx.sort_uniq Value.compare (Shistory.responses h) in
  Alcotest.(check bool) "≤ 2 distinct" true (List.length distinct <= 2);
  List.iter
    (fun r ->
      Alcotest.(check bool) "among first two" true
        (List.mem r [ Value.int 0; Value.int 1 ]))
    distinct

(* --- (n,k)-SA --------------------------------------------------------- *)

let test_nk_sa_port_bound () =
  let sa = Nk_sa.spec ~n:2 ~k:1 () in
  let responses =
    run_first sa (List.init 3 (fun i -> Nk_sa.propose (Value.int i)))
  in
  Alcotest.(check v) "third is ⊥" Value.bot (List.nth responses 2)

let test_nk_sa_k_agreement () =
  (* (5,2)-SA under random adversaries: ≤ 2 distinct non-⊥ responses,
     all proposed. *)
  let sa = Nk_sa.spec ~n:5 ~k:2 () in
  let prng = Prng.create 7 in
  let choice bs = Prng.int prng (List.length bs) in
  for _trial = 1 to 50 do
    let ops = List.init 5 (fun i -> Nk_sa.propose (Value.int i)) in
    let h, _ = Shistory.run ~choice sa ops in
    let rs = List.filter (fun r -> not (Value.is_bot r)) (Shistory.responses h) in
    let distinct = Listx.sort_uniq Value.compare rs in
    Alcotest.(check bool) "≤ k distinct" true (List.length distinct <= 2);
    List.iter
      (fun r ->
        Alcotest.(check bool) "validity" true
          (match r with
          | { Value.node = Int i; _ } -> i >= 0 && i < 5
          | _ -> false))
      distinct
  done

let test_nk_sa_k1_is_consensus_like () =
  (* (3,1)-SA: once a value is returned, all later responses equal it. *)
  let sa = Nk_sa.spec ~n:3 ~k:1 () in
  let prng = Prng.create 11 in
  let choice bs = Prng.int prng (List.length bs) in
  for _trial = 1 to 50 do
    let ops = List.init 3 (fun i -> Nk_sa.propose (Value.int i)) in
    let h, _ = Shistory.run ~choice sa ops in
    match Shistory.responses h with
    | first :: rest ->
      List.iter (fun r -> Alcotest.(check v) "agreement" first r) rest
    | [] -> Alcotest.fail "no responses"
  done

(* --- classic objects -------------------------------------------------- *)

let test_test_and_set () =
  let tas = Classic.Test_and_set.spec () in
  Alcotest.(check (list v)) "tas semantics"
    [ Value.bool false; Value.bool true; Value.bool true; Value.unit_;
      Value.bool false ]
    (run_first tas
       Classic.Test_and_set.
         [ test_and_set; test_and_set; read; reset; test_and_set ])

let test_fetch_and_add () =
  let faa = Classic.Fetch_and_add.spec () in
  Alcotest.(check (list v)) "faa semantics"
    [ Value.int 0; Value.int 5; Value.int 4 ]
    (run_first faa
       Classic.Fetch_and_add.[ fetch_and_add 5; fetch_and_add (-1); read ])

let test_swap () =
  let swap = Classic.Swap.spec () in
  Alcotest.(check (list v)) "swap returns previous"
    [ Value.nil; Value.int 1; Value.int 2 ]
    (run_first swap
       Classic.Swap.[ swap (Value.int 1); swap (Value.int 2); swap (Value.int 3) ])

let test_queue () =
  let q = Classic.Queue_obj.spec () in
  Alcotest.(check (list v)) "fifo order"
    [ Value.nil; Value.unit_; Value.unit_; Value.int 1; Value.int 2; Value.nil ]
    (run_first q
       Classic.Queue_obj.
         [ dequeue; enqueue (Value.int 1); enqueue (Value.int 2); dequeue;
           dequeue; dequeue ])

let test_cas () =
  let cas = Classic.Compare_and_swap.spec () in
  Alcotest.(check (list v)) "cas semantics"
    [ Value.bool true; Value.bool false; Value.int 1 ]
    (run_first cas
       Classic.Compare_and_swap.
         [
           compare_and_swap ~expected:Value.nil ~desired:(Value.int 1);
           compare_and_swap ~expected:Value.nil ~desired:(Value.int 2);
           read;
         ])

let test_sticky () =
  let sticky = Classic.Sticky.spec () in
  Alcotest.(check (list v)) "first write sticks"
    [ Value.int 1; Value.int 1; Value.int 1 ]
    (run_first sticky
       Classic.Sticky.[ write (Value.int 1); write (Value.int 2); read ])

let test_snapshot_primitive () =
  let snap = Classic.Snapshot.spec ~m:2 () in
  Alcotest.(check (list v)) "update and scan"
    [ Value.unit_; Value.list [ Value.nil; Value.int 9 ] ]
    (run_first snap
       Classic.Snapshot.[ update 1 (Value.int 9); scan ])

(* --- (n,m)-PAC composition ------------------------------------------- *)

let test_pac_nm_facets () =
  let p = Pac_nm.spec ~n:2 ~m:2 () in
  let responses =
    run_first p
      [
        Pac_nm.propose_c (Value.int 5);
        Pac_nm.propose_c (Value.int 6);
        Pac_nm.propose_c (Value.int 7);
        Pac_nm.propose_p (Value.int 1) 1;
        Pac_nm.decide_p 1;
      ]
  in
  Alcotest.(check (list v)) "facets behave independently"
    [ Value.int 5; Value.int 5; Value.bot; Value.done_; Value.int 1 ]
    responses

let test_o_n_is_pac_nm () =
  let o2 = O_n.spec ~n:2 () in
  Alcotest.(check string) "name" "O_2" o2.Obj_spec.name;
  (* The PAC facet has n+1 = 3 labels. *)
  let responses =
    run_first o2
      [ O_n.propose_p (Value.int 1) 3; O_n.decide_p 3 ]
  in
  Alcotest.(check (list v)) "label 3 usable" [ Value.done_; Value.int 1 ] responses;
  Alcotest.check_raises "n=1 rejected"
    (Invalid_argument "O_n.spec: the paper defines O_n for n >= 2") (fun () ->
      ignore (O_n.spec ~n:1 ()))

(* --- O'_n ------------------------------------------------------------- *)

let test_oprime_members () =
  let power = O_prime.default_power ~n:2 ~max_k:3 in
  Alcotest.(check (list int)) "default power" [ 2; 4; 6 ] power;
  let o = O_prime.spec ~power () in
  (* k=1 member behaves like 1-set agreement among 2. *)
  let responses =
    run_first o [ O_prime.propose (Value.int 1) 1; O_prime.propose (Value.int 2) 1 ]
  in
  (match responses with
  | [ a; b ] ->
    Alcotest.(check v) "1-agreement" a b
  | _ -> Alcotest.fail "two responses expected");
  (* Port exhaustion on k=1 after n_1 = 2 proposes. *)
  let responses =
    run_first o
      [
        O_prime.propose (Value.int 1) 1;
        O_prime.propose (Value.int 2) 1;
        O_prime.propose (Value.int 3) 1;
      ]
  in
  Alcotest.(check v) "port exhausted" Value.bot (List.nth responses 2);
  (* Unknown level rejected. *)
  match Shistory.run o [ O_prime.propose (Value.int 1) 9 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for k=9"

(* --- registry --------------------------------------------------------- *)

let test_registry () =
  List.iter
    (fun (desc, expected_name) ->
      let spec = Registry.of_string desc in
      Alcotest.(check string) desc expected_name spec.Obj_spec.name)
    [
      ("reg", "register");
      ("cons:3", "3-consensus");
      ("2sa", "2-SA");
      ("nksa:4:2", "(4,2)-SA");
      ("pac:3", "3-PAC");
      ("pacnm:3:2", "(3,2)-PAC");
      ("on:2", "O_2");
      ("oprime:2:3", "O'_2");
      ("tas", "test-and-set");
      ("faa", "fetch-and-add");
      ("swap", "swap");
      ("queue", "queue");
      ("cas", "compare-and-swap");
      ("sticky", "sticky");
      ("snapshot:3", "3-snapshot");
    ];
  match Registry.of_string "nonsense" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected parse failure"

let () =
  Alcotest.run "objects"
    [
      ( "register",
        [
          Alcotest.test_case "read/write" `Quick test_register;
          Alcotest.test_case "unknown op" `Quick test_register_unknown_op;
        ] );
      ( "consensus-obj",
        [
          Alcotest.test_case "first m then ⊥" `Quick test_consensus_obj;
          Alcotest.test_case "deterministic" `Quick
            test_consensus_obj_deterministic;
          Alcotest.test_case "bad m" `Quick test_consensus_obj_bad_m;
        ] );
      ( "2sa",
        [
          Alcotest.test_case "branch structure" `Quick test_sa2_branches;
          Alcotest.test_case "at most two distinct" `Quick
            test_sa2_at_most_two_distinct;
        ] );
      ( "nksa",
        [
          Alcotest.test_case "port bound" `Quick test_nk_sa_port_bound;
          Alcotest.test_case "k-agreement" `Quick test_nk_sa_k_agreement;
          Alcotest.test_case "k=1 agreement" `Quick
            test_nk_sa_k1_is_consensus_like;
        ] );
      ( "classic",
        [
          Alcotest.test_case "test-and-set" `Quick test_test_and_set;
          Alcotest.test_case "fetch-and-add" `Quick test_fetch_and_add;
          Alcotest.test_case "swap" `Quick test_swap;
          Alcotest.test_case "queue" `Quick test_queue;
          Alcotest.test_case "compare-and-swap" `Quick test_cas;
          Alcotest.test_case "sticky" `Quick test_sticky;
          Alcotest.test_case "snapshot" `Quick test_snapshot_primitive;
        ] );
      ( "combined",
        [
          Alcotest.test_case "(n,m)-PAC facets" `Quick test_pac_nm_facets;
          Alcotest.test_case "O_n" `Quick test_o_n_is_pac_nm;
          Alcotest.test_case "O'_n members" `Quick test_oprime_members;
        ] );
      ("registry", [ Alcotest.test_case "parse" `Quick test_registry ]);
    ]
