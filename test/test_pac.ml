(* The n-PAC object (Algorithm 1): line-by-line semantics, the upset
   discipline (Lemma 3.2), the state invariants (Lemmas 3.3, 3.4) and
   the agreement/validity/nontriviality theorem (Theorem 3.5). *)

open Lbsa

let v = Alcotest.testable Value.pp Value.equal

let run ?choice spec ops = Shistory.run ?choice spec ops

let responses h = Shistory.responses h

(* --- basic scenarios -------------------------------------------------- *)

let test_solo_propose_decide () =
  let pac = Pac.spec ~n:3 () in
  let h, st = run pac [ Pac.propose (Value.int 7) 2; Pac.decide 2 ] in
  Alcotest.(check (list v)) "done then value" [ Value.done_; Value.int 7 ]
    (responses h);
  Alcotest.(check bool) "not upset" false (Pac.is_upset st);
  Alcotest.(check v) "consensus value recorded" (Value.int 7)
    (Pac.consensus_value st)

let test_second_pair_returns_same_value () =
  (* Sequential pairs on different labels: the first decided value is the
     consensus value forever. *)
  let pac = Pac.spec ~n:3 () in
  let h, _ =
    run pac
      [
        Pac.propose (Value.int 7) 1;
        Pac.decide 1;
        Pac.propose (Value.int 8) 2;
        Pac.decide 2;
      ]
  in
  Alcotest.(check (list v)) "second pair decides first value"
    [ Value.done_; Value.int 7; Value.done_; Value.int 7 ]
    (responses h)

let test_interleaved_operations_return_bot () =
  (* An operation between a propose and its matching decide makes the
     decide return ⊥ ("detected concurrency"). *)
  let pac = Pac.spec ~n:3 () in
  let h, st =
    run pac
      [
        Pac.propose (Value.int 1) 1;
        Pac.propose (Value.int 2) 2;  (* intervenes: L moves to 2 *)
        Pac.decide 1;
        Pac.decide 2;
      ]
  in
  Alcotest.(check (list v)) "both decides get ⊥"
    [ Value.done_; Value.done_; Value.bot; Value.bot ]
    (responses h);
  (* The history is legal (alternation respected per label), so the
     object is NOT upset -- ⊥ came from concurrency detection. *)
  Alcotest.(check bool) "not upset" false (Pac.is_upset st)

let test_retry_after_bot_succeeds_solo () =
  (* Algorithm 2's loop: after a ⊥, a solo re-propose/decide pair
     decides. *)
  let pac = Pac.spec ~n:3 () in
  let h, _ =
    run pac
      [
        Pac.propose (Value.int 1) 1;
        Pac.propose (Value.int 2) 2;
        Pac.decide 1;  (* ⊥ *)
        Pac.propose (Value.int 1) 1;
        Pac.decide 1;  (* decides *)
      ]
  in
  Alcotest.(check v) "retry decides own value" (Value.int 1)
    (List.nth (responses h) 4)

let test_decide_without_propose_upsets () =
  let pac = Pac.spec ~n:2 () in
  let h, st = run pac [ Pac.decide 1; Pac.propose (Value.int 3) 1; Pac.decide 1 ] in
  Alcotest.(check bool) "upset" true (Pac.is_upset st);
  Alcotest.(check (list v)) "⊥ forever for decides, done for proposes"
    [ Value.bot; Value.done_; Value.bot ]
    (responses h)

let test_double_propose_same_label_upsets () =
  let pac = Pac.spec ~n:2 () in
  let _, st =
    run pac [ Pac.propose (Value.int 1) 1; Pac.propose (Value.int 2) 1 ]
  in
  Alcotest.(check bool) "upset" true (Pac.is_upset st)

let test_upset_is_permanent () =
  (* Observation 3.1. *)
  let pac = Pac.spec ~n:2 () in
  let ops =
    Pac.decide 1
    :: List.concat_map
         (fun i -> [ Pac.propose (Value.int i) 2; Pac.decide 2 ])
         [ 1; 2; 3 ]
  in
  let h, st = run pac ops in
  Alcotest.(check bool) "still upset" true (Pac.is_upset st);
  List.iteri
    (fun i r ->
      if i mod 2 = 0 then Alcotest.(check v) "decides ⊥" Value.bot r)
    (responses h)

let test_label_range_checked () =
  let pac = Pac.spec ~n:2 () in
  (match run pac [ Pac.propose (Value.int 1) 3 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "label 3 should be rejected for 2-PAC");
  match run pac [ Pac.decide 0 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "label 0 should be rejected"

let test_pac_deterministic () =
  let pac = Pac.spec ~n:2 () in
  Alcotest.(check bool) "propose deterministic" true
    (Obj_spec.is_deterministic_at pac pac.Obj_spec.initial
       (Pac.propose (Value.int 1) 1));
  Alcotest.(check bool) "decide deterministic" true
    (Obj_spec.is_deterministic_at pac pac.Obj_spec.initial (Pac.decide 1))

(* --- Lemma 3.2: upset iff history illegal ----------------------------- *)

(* Enumerate all operation sequences of length <= len over a small
   alphabet and check upset(final state) = not legal(history). *)
let test_lemma_3_2_exhaustive () =
  let n = 2 in
  let pac = Pac.spec ~n () in
  let alphabet =
    [
      Pac.propose (Value.int 1) 1;
      Pac.propose (Value.int 2) 2;
      Pac.decide 1;
      Pac.decide 2;
    ]
  in
  let count = ref 0 in
  let rec go state history depth =
    let h = List.rev history in
    let upset = Pac.is_upset state in
    let legal = Pac.history_legal ~n h in
    incr count;
    Alcotest.(check bool)
      (Fmt.str "upset iff illegal (%d ops)" (List.length h))
      (not legal) upset;
    if depth > 0 then
      List.iter
        (fun op ->
          let state', response = Obj_spec.apply_det pac state op in
          go state' (Shistory.event op response :: history) (depth - 1))
        alphabet
  in
  go pac.Obj_spec.initial [] 5;
  Alcotest.(check bool) "explored many histories" true (!count > 1000)

(* --- Lemmas 3.3 / 3.4: V[] and L track the last operations ------------ *)

let test_lemmas_3_3_and_3_4 () =
  let n = 3 in
  let pac = Pac.spec ~n () in
  let prng = Prng.create 123 in
  for _trial = 1 to 200 do
    let len = Prng.int prng 10 in
    let ops =
      List.init len (fun _ ->
          let i = 1 + Prng.int prng n in
          if Prng.bool prng then Pac.propose (Value.int (Prng.int prng 5)) i
          else Pac.decide i)
    in
    let h, st = run pac ops in
    if not (Pac.is_upset st) then begin
      (* Lemma 3.4: L = i iff the last operation is PROPOSE(-, i). *)
      (match List.rev h with
      | [] -> Alcotest.(check v) "L initially NIL" Value.nil (Pac.label st)
      | last :: _ -> (
        match (last.Shistory.op.Op.name, last.Shistory.op.Op.args) with
        | "propose", [ _; { Value.node = Int i; _ } ] ->
          Alcotest.(check v) "L = last propose label" (Value.int i)
            (Pac.label st)
        | _ -> Alcotest.(check v) "L = NIL after decide" Value.nil (Pac.label st)));
      (* Lemma 3.3: V[i] = v iff the last op with label i is
         PROPOSE(v, i). *)
      List.iter
        (fun i ->
          let last_with_i =
            List.rev h
            |> List.find_opt (fun (e : Shistory.event) ->
                   match e.op.Op.args with
                   | [ _; { Value.node = Int j; _ } ] | [ { Value.node = Int j; _ } ] ->
                     j = i
                   | _ -> false)
          in
          let expected =
            match last_with_i with
            | Some { op = { Op.name = "propose"; args = [ value; _ ] }; _ } ->
              value
            | _ -> Value.nil
          in
          Alcotest.(check v) (Fmt.str "V[%d]" i) expected (Pac.v_entry st i))
        (Listx.range 1 n)
    end
  done

(* --- Theorem 3.5 ------------------------------------------------------ *)

(* Generate random op sequences; check agreement, validity and
   nontriviality of the decide responses. *)
let test_theorem_3_5 () =
  let n = 3 in
  let pac = Pac.spec ~n () in
  let prng = Prng.create 99 in
  for _trial = 1 to 300 do
    let len = Prng.int prng 14 in
    let ops =
      List.init len (fun _ ->
          let i = 1 + Prng.int prng n in
          if Prng.bool prng then Pac.propose (Value.int (Prng.int prng 4)) i
          else Pac.decide i)
    in
    let h, _ = run pac ops in
    let decide_events =
      List.filter (fun (e : Shistory.event) -> e.op.Op.name = "decide") h
    in
    (* (a) Agreement among non-⊥ decide responses. *)
    let non_bot =
      List.filter (fun (e : Shistory.event) -> not (Value.is_bot e.response))
        decide_events
    in
    (match non_bot with
    | [] -> ()
    | first :: rest ->
      List.iter
        (fun (e : Shistory.event) ->
          Alcotest.(check v) "agreement" first.Shistory.response e.response)
        rest);
    (* (b) Validity: every non-⊥ decided value was proposed. *)
    let proposed =
      List.filter_map
        (fun (e : Shistory.event) ->
          match (e.op.Op.name, e.op.Op.args) with
          | "propose", [ value; _ ] -> Some value
          | _ -> None)
        h
    in
    List.iter
      (fun (e : Shistory.event) ->
        Alcotest.(check bool) "validity" true
          (List.exists (Value.equal e.response) proposed))
      non_bot;
    (* (c) Nontriviality: a decide returns ⊥ iff the object was upset
       before it, or the immediately preceding operation is not a
       propose with the same label. *)
    let rec scan state prev = function
      | [] -> ()
      | (e : Shistory.event) :: rest ->
        (match (e.op.Op.name, e.op.Op.args) with
        | "decide", [ { Value.node = Int i; _ } ] ->
          let expected_bot =
            Pac.is_upset state
            ||
            (match prev with
            | Some
                ({ Op.name = "propose"; args = [ _; { Value.node = Int j; _ } ] }
                 : Op.t)
              ->
              j <> i
            | _ -> true)
          in
          Alcotest.(check bool) "nontriviality" expected_bot
            (Value.is_bot e.response)
        | _ -> ());
        let state', _ = Obj_spec.apply_det pac state e.op in
        scan state' (Some e.op) rest
    in
    scan pac.Obj_spec.initial None h
  done

let () =
  Alcotest.run "pac"
    [
      ( "scenarios",
        [
          Alcotest.test_case "solo propose/decide" `Quick
            test_solo_propose_decide;
          Alcotest.test_case "consensus value persists" `Quick
            test_second_pair_returns_same_value;
          Alcotest.test_case "interleaving yields ⊥" `Quick
            test_interleaved_operations_return_bot;
          Alcotest.test_case "retry after ⊥" `Quick
            test_retry_after_bot_succeeds_solo;
          Alcotest.test_case "decide w/o propose upsets" `Quick
            test_decide_without_propose_upsets;
          Alcotest.test_case "double propose upsets" `Quick
            test_double_propose_same_label_upsets;
          Alcotest.test_case "upset permanent (Obs 3.1)" `Quick
            test_upset_is_permanent;
          Alcotest.test_case "label range" `Quick test_label_range_checked;
          Alcotest.test_case "deterministic" `Quick test_pac_deterministic;
        ] );
      ( "lemmas",
        [
          Alcotest.test_case "Lemma 3.2 (exhaustive, depth 5)" `Quick
            test_lemma_3_2_exhaustive;
          Alcotest.test_case "Lemmas 3.3/3.4 (random)" `Quick
            test_lemmas_3_3_and_3_4;
        ] );
      ( "theorem-3.5",
        [ Alcotest.test_case "agreement/validity/nontriviality" `Quick
            test_theorem_3_5 ] );
    ]
