(* Property-based tests (qcheck): invariants of the core data structures
   and objects under randomly generated workloads. *)

open Lbsa

let count = 300

(* --- generators ------------------------------------------------------- *)

let value_gen : Value.t QCheck.arbitrary =
  let open QCheck in
  let base =
    Gen.oneof
      [
        Gen.return Value.unit_;
        Gen.map Value.bool Gen.bool;
        Gen.map Value.int (Gen.int_bound 20);
        Gen.map Value.sym (Gen.oneofl [ "a"; "b"; "c" ]);
        Gen.return Value.bot;
        Gen.return Value.nil;
        Gen.return Value.done_;
      ]
  in
  let rec tree depth =
    if depth = 0 then base
    else
      Gen.oneof
        [
          base;
          Gen.map2 (fun a b -> Value.pair (a, b)) (tree (depth - 1)) (tree (depth - 1));
          Gen.map Value.list (Gen.list_size (Gen.int_bound 3) (tree (depth - 1)));
        ]
  in
  make ~print:Value.to_string (tree 3)

(* Random PAC operation sequence over n labels and small values. *)
let pac_ops_gen ~n =
  let open QCheck.Gen in
  list_size (int_bound 16)
    ( int_range 1 n >>= fun i ->
      bool >>= fun is_propose ->
      if is_propose then
        map (fun v -> Pac.propose (Value.int v) i) (int_bound 3)
      else return (Pac.decide i) )

let pac_ops_arb ~n =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map Op.to_string ops))
    (pac_ops_gen ~n)

(* --- Value laws -------------------------------------------------------- *)

let prop_compare_total_order =
  QCheck.Test.make ~count ~name:"Value.compare is a total order"
    (QCheck.triple value_gen value_gen value_gen) (fun (a, b, c) ->
      let sgn x = Stdlib.compare x 0 in
      sgn (Value.compare a b) = -sgn (Value.compare b a)
      && ((not (Value.compare a b <= 0 && Value.compare b c <= 0))
         || Value.compare a c <= 0))

let prop_equal_consistent_with_compare =
  QCheck.Test.make ~count ~name:"Value.equal iff compare = 0"
    (QCheck.pair value_gen value_gen) (fun (a, b) ->
      Value.equal a b = (Value.compare a b = 0))

let prop_assoc_get_set =
  QCheck.Test.make ~count ~name:"Assoc.get after set"
    (QCheck.triple value_gen value_gen value_gen) (fun (k, v, k') ->
      let m = Value.Assoc.set Value.Assoc.empty k v in
      match Value.Assoc.get m k' with
      | Some v' -> Value.equal k k' && Value.equal v v'
      | None -> not (Value.equal k k'))

let prop_set_add_mem =
  QCheck.Test.make ~count ~name:"Set_.mem after add"
    (QCheck.pair value_gen (QCheck.small_list value_gen)) (fun (x, xs) ->
      let s = Value.Set_.of_list xs in
      Value.Set_.mem x (Value.Set_.add x s))

let prop_set_cardinal_distinct =
  QCheck.Test.make ~count ~name:"Set_ cardinal = distinct count"
    (QCheck.small_list value_gen) (fun xs ->
      Value.Set_.cardinal (Value.Set_.of_list xs)
      = List.length (Listx.sort_uniq Value.compare xs))

(* --- PAC invariants ---------------------------------------------------- *)

let run_pac ~n ops =
  let pac = Pac.spec ~n () in
  Shistory.run pac ops

let prop_pac_upset_iff_illegal =
  QCheck.Test.make ~count ~name:"Lemma 3.2: upset iff history illegal"
    (pac_ops_arb ~n:3) (fun ops ->
      let h, st = run_pac ~n:3 ops in
      Pac.is_upset st = not (Pac.history_legal ~n:3 h))

let prop_pac_agreement =
  QCheck.Test.make ~count ~name:"Thm 3.5(a): non-⊥ decides agree"
    (pac_ops_arb ~n:3) (fun ops ->
      let h, _ = run_pac ~n:3 ops in
      let decided =
        List.filter_map
          (fun (e : Shistory.event) ->
            if e.op.Op.name = "decide" && not (Value.is_bot e.response) then
              Some e.response
            else None)
          h
      in
      List.length (Listx.sort_uniq Value.compare decided) <= 1)

let prop_pac_validity =
  QCheck.Test.make ~count ~name:"Thm 3.5(b): decided values were proposed"
    (pac_ops_arb ~n:3) (fun ops ->
      let h, _ = run_pac ~n:3 ops in
      let proposed =
        List.filter_map
          (fun (e : Shistory.event) ->
            match (e.op.Op.name, e.op.Op.args) with
            | "propose", [ v; _ ] -> Some v
            | _ -> None)
          h
      in
      List.for_all
        (fun (e : Shistory.event) ->
          e.op.Op.name <> "decide"
          || Value.is_bot e.response
          || List.exists (Value.equal e.response) proposed)
        h)

let prop_pac_proposes_return_done =
  QCheck.Test.make ~count ~name:"proposes always return done"
    (pac_ops_arb ~n:3) (fun ops ->
      let h, _ = run_pac ~n:3 ops in
      List.for_all
        (fun (e : Shistory.event) ->
          e.op.Op.name <> "propose" || Value.equal e.response Value.done_)
        h)

(* --- 2-SA and (n,k)-SA invariants -------------------------------------- *)

let int_ops_gen =
  QCheck.Gen.(list_size (int_range 1 12) (int_bound 6))

let prop_sa2_responses_valid =
  QCheck.Test.make ~count
    ~name:"2-SA: responses among first two distinct proposals"
    (QCheck.make int_ops_gen) (fun vs ->
      let sa = Sa2.spec () in
      let prng = Prng.create (Hashtbl.hash vs) in
      let choice bs = Prng.int prng (List.length bs) in
      let ops = List.map (fun v -> Sa2.propose (Value.int v)) vs in
      let h, _ = Shistory.run ~choice sa ops in
      let first_two =
        Listx.take 2
          (List.fold_left
             (fun acc v ->
               if List.exists (Value.equal v) acc then acc else acc @ [ v ])
             []
             (List.map (fun v -> Value.int v) vs))
      in
      List.for_all
        (fun r -> List.exists (Value.equal r) first_two)
        (Shistory.responses h))

let prop_nk_sa_invariants =
  QCheck.Test.make ~count ~name:"(n,k)-SA: ≤k distinct, valid, port-bounded"
    (QCheck.make int_ops_gen) (fun vs ->
      let n = 4 and k = 2 in
      let sa = Nk_sa.spec ~n ~k () in
      let prng = Prng.create (Hashtbl.hash (vs, 1)) in
      let choice bs = Prng.int prng (List.length bs) in
      let ops = List.map (fun v -> Nk_sa.propose (Value.int v)) vs in
      let h, _ = Shistory.run ~choice sa ops in
      let responses = Shistory.responses h in
      let non_bot = List.filter (fun r -> not (Value.is_bot r)) responses in
      let distinct = Listx.sort_uniq Value.compare non_bot in
      List.length distinct <= k
      && List.length non_bot <= n
      && List.for_all
           (fun r -> List.exists (fun v -> Value.equal r (Value.int v)) vs)
           distinct
      && List.for_all Value.is_bot
           (if List.length responses > n then
              List.filteri (fun i _ -> i >= n) responses
            else []))

let prop_consensus_obj_agreement =
  QCheck.Test.make ~count ~name:"m-consensus: first m get first value"
    (QCheck.make int_ops_gen) (fun vs ->
      QCheck.assume (vs <> []);
      let m = 3 in
      let c = Consensus_obj.spec ~m () in
      let ops = List.map (fun v -> Consensus_obj.propose (Value.int v)) vs in
      let h, _ = Shistory.run c ops in
      let first = Value.int (List.hd vs) in
      List.for_all
        (fun (i, r) ->
          if i < m then Value.equal r first else Value.is_bot r)
        (List.mapi (fun i r -> (i, r)) (Shistory.responses h)))

(* --- executor / linearizability --------------------------------------- *)

let prop_executor_deterministic =
  QCheck.Test.make ~count:50 ~name:"executor reproducible from seed"
    QCheck.small_nat (fun seed ->
      let machine = Dac_from_pac.machine ~n:3 in
      let specs = Dac_from_pac.specs ~n:3 in
      let inputs = [| Value.int 1; Value.int 0; Value.int 0 |] in
      let run () =
        let r =
          Executor.run ~machine ~specs ~inputs
            ~scheduler:(Scheduler.random ~seed) ()
        in
        (r.Executor.steps, Config.decisions r.Executor.final)
      in
      run () = run ())

let prop_generated_histories_linearizable =
  QCheck.Test.make ~count:100 ~name:"generated histories linearize"
    QCheck.small_nat (fun seed ->
      let prng = Prng.create (seed + 1) in
      let spec = Classic.Fetch_and_add.spec () in
      let workloads =
        Array.init 3 (fun _ ->
            List.init 2 (fun _ -> Classic.Fetch_and_add.fetch_and_add 1))
      in
      let h = Lin_gen.linearizable_history ~prng ~spec ~workloads in
      match Lin_checker.check spec h with
      | Lin_checker.Linearizable _ -> true
      | Lin_checker.Not_linearizable -> false)

let prop_algorithm2_safety_random =
  QCheck.Test.make ~count:100 ~name:"Algorithm 2 safe under random schedules"
    QCheck.small_nat (fun seed ->
      let n = 4 in
      let machine = Dac_from_pac.machine ~n in
      let specs = Dac_from_pac.specs ~n in
      let prng = Prng.create (seed * 7 + 1) in
      let inputs = Array.init n (fun _ -> Value.int (Prng.int prng 2)) in
      let r =
        Executor.run ~machine ~specs ~inputs
          ~scheduler:(Scheduler.random ~seed) ()
      in
      match Dac.check_safety ~inputs ~trace:r.Executor.trace r.Executor.final with
      | Ok () -> true
      | Error _ -> false)

let prop_universal_linearizable =
  QCheck.Test.make ~count:40 ~name:"universal construction linearizes"
    QCheck.small_nat (fun seed ->
      let target = Classic.Fetch_and_add.spec () in
      let impl = Universal.implementation ~n:2 ~target () in
      let workloads =
        Array.init 2 (fun _ ->
            List.init 2 (fun _ -> Classic.Fetch_and_add.fetch_and_add 1))
      in
      let nondet = Harness.Random (Prng.create (seed + 17)) in
      let run =
        Harness.run_clients ~nondet ~impl ~workloads
          ~scheduler:(Scheduler.random ~seed:(seed + 1)) ()
      in
      Lin_checker.is_linearizable (Lin_checker.check target run.Harness.history))

let prop_op_encode_roundtrip =
  QCheck.Test.make ~count ~name:"Universal op encode/decode roundtrip"
    (QCheck.pair (QCheck.oneofl [ "propose"; "read"; "x_y" ])
       (QCheck.small_list value_gen)) (fun (name, args) ->
      let op = Op.make name args in
      Op.equal op (Universal.decode_op (Universal.encode_op op)))

let prop_checker_memo_ablation_agrees =
  QCheck.Test.make ~count:40 ~name:"lin-checker memo on/off agree"
    QCheck.small_nat (fun seed ->
      let prng = Prng.create (seed + 3) in
      let spec = Register.spec () in
      let workloads =
        Array.init 2 (fun pid ->
            [ Register.write (Value.int pid); Register.read ])
      in
      let h = Lin_gen.linearizable_history ~prng ~spec ~workloads in
      let h =
        if seed mod 2 = 0 then h
        else Option.value (Lin_gen.corrupt ~prng ~spec h) ~default:h
      in
      Lin_checker.is_linearizable (Lin_checker.check ~memo:true spec h)
      = Lin_checker.is_linearizable (Lin_checker.check ~memo:false spec h))

let prop_safe_agreement_safety =
  QCheck.Test.make ~count:100 ~name:"safe agreement: agreement + validity"
    QCheck.small_nat (fun seed ->
      let n = 3 in
      let machine = Safe_agreement.machine ~n in
      let specs = Safe_agreement.specs ~n in
      let prng = Prng.create (seed * 5 + 2) in
      let inputs = Array.init n (fun _ -> Value.int (Prng.int prng 3)) in
      let r =
        Executor.run ~machine ~specs ~inputs
          ~scheduler:(Scheduler.random ~seed:(seed + 1)) ()
      in
      match Consensus_task.check_safety ~inputs r.Executor.final with
      | Ok () -> true
      | Error _ -> false)

let prop_bg_simulation_faithful =
  QCheck.Test.make ~count:25 ~name:"BG simulation outcomes are genuine"
    (QCheck.pair QCheck.small_nat (QCheck.oneofl [ 1; 2 ])) (fun (seed, steps) ->
      let p = Sim_protocol.min_seen ~n_sim:2 ~steps in
      let inputs = [| Value.int 10; Value.int 11 |] in
      let outcomes = Sim_protocol.direct_outcomes p ~inputs in
      let r =
        Bg_simulation.run ~p ~sim_inputs:inputs ~simulators:2
          ~scheduler:(Scheduler.random ~seed:(seed + 1)) ()
      in
      match r.Bg_simulation.simulated_decisions with
      | Some ds ->
        List.exists (Value.equal (Value.list ds)) outcomes
        && Bg_simulation.simulators_agree r
        && Bg_simulation.views_comparable r.Bg_simulation.all_views
      | None -> false)

let prop_fault_plans_preserve_dac_safety =
  QCheck.Test.make ~count:60 ~name:"random crash plans never break DAC safety"
    QCheck.small_nat (fun seed ->
      let n = 4 in
      let machine = Dac_from_pac.machine ~n in
      let specs = Dac_from_pac.specs ~n in
      let prng = Prng.create (seed + 11) in
      let inputs = Array.init n (fun _ -> Value.int (Prng.int prng 2)) in
      let plan = Fault.random ~prng ~victims:[ 1; 2; 3 ] ~max_steps:6 in
      let scheduler = Fault.apply plan (Scheduler.random ~seed:(seed + 2)) in
      let r = Executor.run ~machine ~specs ~inputs ~scheduler () in
      match Dac.check_safety ~inputs ~trace:r.Executor.trace r.Executor.final with
      | Ok () -> true
      | Error _ -> false)

let () =
  Alcotest.run "properties"
    [
      ( "value-laws",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_compare_total_order;
            prop_equal_consistent_with_compare;
            prop_assoc_get_set;
            prop_set_add_mem;
            prop_set_cardinal_distinct;
          ] );
      ( "pac-invariants",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_pac_upset_iff_illegal;
            prop_pac_agreement;
            prop_pac_validity;
            prop_pac_proposes_return_done;
          ] );
      ( "agreement-objects",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_sa2_responses_valid;
            prop_nk_sa_invariants;
            prop_consensus_obj_agreement;
          ] );
      ( "runtime",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_executor_deterministic;
            prop_generated_histories_linearizable;
            prop_algorithm2_safety_random;
          ] );
      ( "constructions",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_universal_linearizable;
            prop_op_encode_roundtrip;
            prop_checker_memo_ablation_agrees;
            prop_safe_agreement_safety;
            prop_bg_simulation_faithful;
            prop_fault_plans_preserve_dac_safety;
          ] );
    ]
