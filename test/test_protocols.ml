(* Protocols and task checkers: Algorithm 2 (n-DAC from n-PAC),
   consensus and k-set agreement protocols, and the candidate family. *)

open Lbsa

let v = Alcotest.testable Value.pp Value.equal

(* --- Algorithm 2 under concrete schedules ----------------------------- *)

let test_dac_solo_p_decides_own_input () =
  (* Nontriviality + validity: p running solo decides its own input. *)
  let n = 3 in
  let machine = Dac_from_pac.machine ~n in
  let specs = Dac_from_pac.specs ~n in
  let inputs = [| Value.int 1; Value.int 0; Value.int 0 |] in
  let r = Executor.run ~machine ~specs ~inputs ~scheduler:(Scheduler.solo 0) () in
  Alcotest.(check (option v)) "p decides its input" (Some (Value.int 1))
    (Config.decision r.Executor.final 0)

let test_dac_round_robin_agreement () =
  let n = 4 in
  let machine = Dac_from_pac.machine ~n in
  let specs = Dac_from_pac.specs ~n in
  List.iter
    (fun inputs ->
      let r =
        Executor.run ~machine ~specs ~inputs
          ~scheduler:(Scheduler.round_robin ~n) ()
      in
      match Dac.check_safety ~inputs ~trace:r.Executor.trace r.Executor.final with
      | Ok () -> ()
      | Error viol -> Alcotest.failf "%a" Dac.pp_violation viol)
    (Dac.binary_inputs n)

let test_dac_random_schedules () =
  let n = 5 in
  let machine = Dac_from_pac.machine ~n in
  let specs = Dac_from_pac.specs ~n in
  let prng = Prng.create 77 in
  for seed = 1 to 100 do
    let inputs = Array.init n (fun _ -> Value.int (Prng.int prng 2)) in
    let r =
      Executor.run ~machine ~specs ~inputs ~scheduler:(Scheduler.random ~seed) ()
    in
    (match Dac.check_safety ~inputs ~trace:r.Executor.trace r.Executor.final with
    | Ok () -> ()
    | Error viol -> Alcotest.failf "seed %d: %a" seed Dac.pp_violation viol);
    (* Termination from wherever the run stopped. *)
    (match Dac.check_termination_a ~machine ~specs r.Executor.final with
    | Ok () -> ()
    | Error viol -> Alcotest.failf "seed %d: %a" seed Dac.pp_violation viol);
    match Dac.check_termination_b ~machine ~specs r.Executor.final with
    | Ok () -> ()
    | Error viol -> Alcotest.failf "seed %d: %a" seed Dac.pp_violation viol
  done

let test_dac_crash_tolerance () =
  (* Crash every non-p process after a prefix: p still decides or
     aborts (termination (a)); the paper allows aborting here. *)
  let n = 3 in
  let machine = Dac_from_pac.machine ~n in
  let specs = Dac_from_pac.specs ~n in
  let inputs = [| Value.int 1; Value.int 0; Value.int 0 |] in
  let r =
    Executor.run ~machine ~specs ~inputs
      ~scheduler:
        (Scheduler.prefix [ 1; 2; 0 ] (Scheduler.excluding [ 1; 2 ]
           (Scheduler.round_robin ~n)))
      ()
  in
  let p_status = r.Executor.final.Config.status.(0) in
  Alcotest.(check bool) "p halted" true
    (match p_status with
    | Config.Decided _ | Config.Aborted -> true
    | _ -> false)

let test_dac_via_o_n () =
  (* Observation 5.1(b) executable: Algorithm 2 over O_2's PAC facet
     solves 3-DAC under fair schedules. *)
  let n = 2 in
  let machine = Dac_from_pac.machine_via_o_n ~n in
  let specs = Dac_from_pac.specs_via_o_n ~n in
  List.iter
    (fun inputs ->
      let r =
        Executor.run ~machine ~specs ~inputs
          ~scheduler:(Scheduler.round_robin ~n:(n + 1)) ()
      in
      match Dac.check_safety ~inputs ~trace:r.Executor.trace r.Executor.final with
      | Ok () -> ()
      | Error viol -> Alcotest.failf "%a" Dac.pp_violation viol)
    (Dac.binary_inputs (n + 1))

(* --- DAC property checkers on synthetic outcomes ---------------------- *)

let synthetic_config ~statuses =
  (* A config with given statuses; locals/objects irrelevant for the
     safety checkers that only look at statuses. *)
  Config.
    {
      locals = Array.make (Array.length statuses) Value.unit_;
      objects = [||];
      status = statuses;
    }

let test_dac_checkers_flag_violations () =
  let c_disagree =
    synthetic_config
      ~statuses:[| Config.Decided (Value.int 0); Config.Decided (Value.int 1) |]
  in
  (match Dac.check_agreement c_disagree with
  | Error (Dac.Disagreement _) -> ()
  | _ -> Alcotest.fail "disagreement not flagged");
  let c_invalid =
    synthetic_config ~statuses:[| Config.Decided (Value.int 1); Config.Running |]
  in
  (match Dac.check_validity ~inputs:[| Value.int 0; Value.int 0 |] c_invalid with
  | Error (Dac.Invalid_decision _) -> ()
  | _ -> Alcotest.fail "invalid decision not flagged");
  (* A decided value whose only proposer aborted is invalid. *)
  let c_aborted_proposer =
    synthetic_config ~statuses:[| Config.Aborted; Config.Decided (Value.int 1) |]
  in
  (match
     Dac.check_validity ~inputs:[| Value.int 1; Value.int 0 |] c_aborted_proposer
   with
  | Error (Dac.Invalid_decision _) -> ()
  | _ -> Alcotest.fail "aborted proposer's value accepted");
  let c_bad_abort =
    synthetic_config ~statuses:[| Config.Running; Config.Aborted |]
  in
  match Dac.check_aborts c_bad_abort with
  | Error (Dac.Abort_by_non_distinguished 1) -> ()
  | _ -> Alcotest.fail "non-p abort not flagged"

let test_nontriviality_checker () =
  (* p aborts as the very first event: violation. *)
  let bad = Trace.of_events [ Config.Abort_event { pid = 0 } ] in
  (match Dac.check_nontriviality bad with
  | Error Dac.Nontriviality_violated -> ()
  | _ -> Alcotest.fail "untriggered abort not flagged");
  (* A q-step before the abort: fine. *)
  let ok =
    Trace.of_events
      [
        Config.Op_event
          { pid = 1; obj = 0; op = Register.read; response = Value.nil };
        Config.Abort_event { pid = 0 };
      ]
  in
  match Dac.check_nontriviality ok with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "legitimate abort flagged"

(* --- consensus protocols ---------------------------------------------- *)

let run_consensus ~machine ~specs ~procs:_ ~seed inputs =
  Executor.run ~machine ~specs ~inputs ~scheduler:(Scheduler.random ~seed) ()

let test_consensus_from_obj () =
  let m = 3 in
  let machine, specs = Consensus_protocols.from_consensus_obj ~m in
  for seed = 1 to 50 do
    let inputs = [| Value.int 4; Value.int 5; Value.int 6 |] in
    let r = run_consensus ~machine ~specs ~procs:m ~seed inputs in
    match Consensus_task.check_run ~inputs r with
    | Ok () -> ()
    | Error viol ->
      Alcotest.failf "seed %d: %a" seed Consensus_task.pp_violation viol
  done

let test_consensus_from_pac_nm_and_sticky () =
  List.iter
    (fun (machine, specs, procs) ->
      for seed = 1 to 30 do
        let inputs = Array.init procs (fun i -> Value.int i) in
        let r = run_consensus ~machine ~specs ~procs ~seed inputs in
        match Consensus_task.check_run ~inputs r with
        | Ok () -> ()
        | Error viol ->
          Alcotest.failf "%s seed %d: %a" machine.Machine.name seed
            Consensus_task.pp_violation viol
      done)
    [
      (let m, s = Consensus_protocols.from_pac_nm ~n:2 ~m:3 in
       (m, s, 3));
      (let m, s = Consensus_protocols.from_o_n ~n:2 in
       (m, s, 2));
      (let m, s = Consensus_protocols.from_sticky () in
       (m, s, 5));
      (let m, s = Consensus_protocols.from_test_and_set () in
       (m, s, 2));
      (let m, s =
         Consensus_protocols.from_oprime
           ~power:(O_prime.default_power ~n:3 ~max_k:2)
       in
       (m, s, 3));
    ]

(* --- k-set agreement protocols ---------------------------------------- *)

let check_kset_run ~k ~machine ~specs ~procs ~seed =
  let inputs = Kset_task.distinct_inputs procs in
  let r =
    Executor.run
      ~nondet:(Executor.Random (Prng.create (seed * 13)))
      ~machine ~specs ~inputs ~scheduler:(Scheduler.random ~seed) ()
  in
  match Kset_task.check_run ~k ~inputs r with
  | Ok () -> ()
  | Error viol ->
    Alcotest.failf "%s seed %d: %a" machine.Machine.name seed
      Kset_task.pp_violation viol

let test_kset_partition () =
  (* 2-set agreement among 6 processes from 3-consensus objects. *)
  let machine, specs = Kset_protocols.partition ~m:3 ~k:2 in
  for seed = 1 to 30 do
    check_kset_run ~k:2 ~machine ~specs ~procs:6 ~seed
  done

let test_kset_from_sa2 () =
  let machine, specs = Kset_protocols.from_sa2 ~k:2 in
  for seed = 1 to 30 do
    check_kset_run ~k:2 ~machine ~specs ~procs:7 ~seed
  done

let test_kset_from_nk_sa () =
  let machine, specs = Kset_protocols.from_nk_sa ~n:5 ~k:3 in
  for seed = 1 to 30 do
    check_kset_run ~k:3 ~machine ~specs ~procs:5 ~seed
  done

let test_kset_from_oprime_and_o_n () =
  let power = O_prime.default_power ~n:2 ~max_k:3 in
  let machine, specs = Kset_protocols.from_oprime ~power ~k:2 in
  for seed = 1 to 20 do
    check_kset_run ~k:2 ~machine ~specs ~procs:4 ~seed
  done;
  let machine, specs = Kset_protocols.partition_from_o_n ~n:2 ~k:2 in
  for seed = 1 to 20 do
    check_kset_run ~k:2 ~machine ~specs ~procs:4 ~seed
  done

let test_kset_rejects_bad_k () =
  (match Kset_protocols.from_sa2 ~k:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "k=1 from 2-SA should be rejected");
  match Kset_protocols.from_oprime ~power:[ 2; 4 ] ~k:3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "k beyond prefix should be rejected"

(* --- candidates behave as designed under targeted schedules ----------- *)

let test_flp_write_read_disagrees () =
  let machine, specs = Candidates.flp_write_read in
  let inputs = [| Value.int 1; Value.int 0 |] in
  (* p0 runs alone first (sees NIL, keeps its 1), then p1 (sees 1,
     decides min = 0). *)
  let r =
    Executor.run ~machine ~specs ~inputs
      ~scheduler:(Scheduler.fixed [ 0; 0; 0; 1; 1; 1 ]) ()
  in
  match Consensus_task.check_agreement r.Executor.final with
  | Error (Consensus_task.Disagreement _) -> ()
  | _ -> Alcotest.fail "expected the classic disagreement schedule to fire"

let test_flp_spin_not_wait_free () =
  let machine, specs = Candidates.flp_spin in
  let inputs = [| Value.int 1; Value.int 0 |] in
  let r =
    Executor.run ~max_steps:200 ~machine ~specs ~inputs
      ~scheduler:(Scheduler.solo 0) ()
  in
  Alcotest.(check bool) "p0 spins forever solo" true
    (r.Executor.stop = Executor.Step_limit)

let test_pac_retry_livelocks_under_alternation () =
  let machine, specs = Candidates.consensus_from_pac_retry ~n:2 ~procs:2 in
  let inputs = [| Value.int 0; Value.int 1 |] in
  let r =
    Executor.run ~max_steps:400 ~machine ~specs ~inputs
      ~scheduler:(Scheduler.round_robin ~n:2) ()
  in
  Alcotest.(check bool) "fair alternation livelocks" true
    (r.Executor.stop = Executor.Step_limit)

(* --- safe agreement (Borowsky-Gafni) ----------------------------------- *)

let test_safe_agreement_crash_free_runs () =
  (* Under fair schedules without crashes, everyone decides one common
     proposed value. *)
  List.iter
    (fun n ->
      let machine = Safe_agreement.machine ~n in
      let specs = Safe_agreement.specs ~n in
      for seed = 1 to 50 do
        let inputs = Kset_task.distinct_inputs n in
        let r =
          Executor.run ~machine ~specs ~inputs
            ~scheduler:(Scheduler.random ~seed) ()
        in
        Alcotest.(check bool) "halted" true
          (r.Executor.stop = Executor.All_halted);
        (match Consensus_task.check_safety ~inputs r.Executor.final with
        | Ok () -> ()
        | Error viol ->
          Alcotest.failf "n=%d seed=%d: %a" n seed Consensus_task.pp_violation
            viol);
        Alcotest.(check int) "everyone decided" n
          (List.length (Config.decisions r.Executor.final))
      done)
    [ 2; 3; 5 ]

let test_safe_agreement_exhaustive_safety () =
  (* Agreement and validity at every reachable configuration, over all
     schedules (n = 2 and 3). *)
  List.iter
    (fun n ->
      let machine = Safe_agreement.machine ~n in
      let specs = Safe_agreement.specs ~n in
      let inputs = Kset_task.distinct_inputs n in
      let graph = Cgraph.build ~machine ~specs ~inputs () in
      Alcotest.(check bool) "complete" true (not graph.Cgraph.truncated);
      Cgraph.iter_nodes
        (fun id config ->
          match Consensus_task.check_safety ~inputs config with
          | Ok () -> ()
          | Error viol ->
            Alcotest.failf "n=%d node %d: %a" n id
              Consensus_task.pp_violation viol)
        graph)
    [ 2; 3 ]

let test_safe_agreement_unsafe_zone_blocks () =
  (* A crash inside the unsafe zone blocks everyone else: run p0 for one
     step (level 1, unsafe), then p1 solo — it spins forever. *)
  let n = 2 in
  let machine = Safe_agreement.machine ~n in
  let specs = Safe_agreement.specs ~n in
  let inputs = Kset_task.distinct_inputs n in
  let r =
    Executor.run ~machine ~specs ~inputs ~scheduler:(Scheduler.fixed [ 0 ]) ()
  in
  Alcotest.(check bool) "p0 is in its unsafe zone" true
    (Safe_agreement.in_unsafe_zone r.Executor.final 0);
  let r2 =
    Executor.run_solo ~max_steps:500 ~machine ~specs r.Executor.final 1
  in
  Alcotest.(check bool) "p1 spins forever" true
    (r2.Executor.stop = Executor.Step_limit)

let test_safe_agreement_conditional_termination () =
  (* From every reachable configuration where NO process is inside its
     unsafe zone, every running process decides when run solo — the
     precise sense in which termination is conditional. *)
  let n = 2 in
  let machine = Safe_agreement.machine ~n in
  let specs = Safe_agreement.specs ~n in
  let inputs = Kset_task.distinct_inputs n in
  let graph = Cgraph.build ~machine ~specs ~inputs () in
  let cache = Solvability.solo_cache () in
  let accept = function
    | Config.Decided _ -> true
    | _ -> false
  in
  Cgraph.iter_nodes
    (fun id config ->
      let unsafe =
        List.exists
          (Safe_agreement.in_unsafe_zone config)
          (Listx.range 0 (n - 1))
      in
      if not unsafe then
        List.iter
          (fun pid ->
            if
              not
                (Solvability.solo_halts ~cache ~machine ~specs ~pid ~accept
                   config)
            then
              Alcotest.failf
                "node %d: p%d blocked although nobody is in an unsafe zone" id
                pid)
          (Config.running config))
    graph

(* --- obstruction-free consensus (iterated commit-adopt) ---------------- *)

let test_of_consensus_solo_decides () =
  let n = 2 in
  let machine = Obstruction_free.machine ~n ~max_rounds:5 in
  let specs = Obstruction_free.specs ~n ~max_rounds:5 in
  List.iter
    (fun pid ->
      let inputs = [| Value.int 0; Value.int 1 |] in
      let r =
        Executor.run ~machine ~specs ~inputs ~scheduler:(Scheduler.solo pid) ()
      in
      Alcotest.(check (option v)) "solo runner decides its own input"
        (Some inputs.(pid))
        (Config.decision r.Executor.final pid))
    [ 0; 1 ]

let test_of_consensus_random_terminates_safely () =
  let n = 3 in
  let machine = Obstruction_free.machine ~n ~max_rounds:100 in
  let specs = Obstruction_free.specs ~n ~max_rounds:100 in
  for seed = 1 to 50 do
    let inputs = Kset_task.distinct_inputs n in
    let r =
      Executor.run ~machine ~specs ~inputs ~scheduler:(Scheduler.random ~seed)
        ()
    in
    Alcotest.(check bool) "terminates" true
      (r.Executor.stop = Executor.All_halted);
    match Consensus_task.check_safety ~inputs r.Executor.final with
    | Ok () -> ()
    | Error viol ->
      Alcotest.failf "seed %d: %a" seed Consensus_task.pp_violation viol
  done

let test_of_consensus_lockstep_livelocks () =
  (* Perfect round-robin lockstep with different inputs never converges:
     the round counter outruns any bound. *)
  let n = 2 in
  let machine = Obstruction_free.machine ~n ~max_rounds:6 in
  let specs = Obstruction_free.specs ~n ~max_rounds:6 in
  let inputs = [| Value.int 0; Value.int 1 |] in
  match
    Executor.run ~max_steps:10_000 ~machine ~specs ~inputs
      ~scheduler:(Scheduler.round_robin ~n) ()
  with
  | exception Obstruction_free.Out_of_rounds _ -> ()
  | r ->
    Alcotest.failf "expected livelock, stopped with %s"
      (match r.Executor.stop with
      | Executor.All_halted -> "all halted"
      | Executor.Scheduler_stopped -> "scheduler stop"
      | Executor.Step_limit -> "step limit")

let test_of_consensus_bounded_exhaustive_safety () =
  (* Safety at every configuration of a bounded exploration (the full
     state space is infinite: rounds can grow forever). *)
  let n = 2 in
  let machine = Obstruction_free.machine ~n ~max_rounds:50 in
  let specs = Obstruction_free.specs ~n ~max_rounds:50 in
  let inputs = [| Value.int 0; Value.int 1 |] in
  let graph = Cgraph.build ~max_states:20_000 ~machine ~specs ~inputs () in
  Cgraph.iter_nodes
    (fun id config ->
      match Consensus_task.check_safety ~inputs config with
      | Ok () -> ()
      | Error viol ->
        Alcotest.failf "node %d: %a" id Consensus_task.pp_violation viol)
    graph;
  (* Obstruction-freedom, exhaustively on the explored region: every
     running process decides when run solo. *)
  let cache = Solvability.solo_cache () in
  let accept = function
    | Config.Decided _ -> true
    | _ -> false
  in
  let checked = ref 0 in
  Cgraph.iter_nodes
    (fun id config ->
      (* Solo runs from deep frontier nodes can outrun max_rounds; only
         judge nodes whose round counters are low. *)
      if id < 2_000 then
        List.iter
          (fun pid ->
            incr checked;
            if not (Solvability.solo_halts ~cache ~machine ~specs ~pid ~accept config)
            then Alcotest.failf "node %d: p%d solo run failed to decide" id pid)
          (Config.running config))
    graph;
  Alcotest.(check bool) "many solo checks" true (!checked > 1_000)

(* --- classic consensus constructions ----------------------------------- *)

let test_consensus_from_classic_objects () =
  List.iter
    (fun (machine, specs) ->
      for seed = 1 to 30 do
        let inputs = [| Value.int 7; Value.int 8 |] in
        let r = run_consensus ~machine ~specs ~procs:2 ~seed inputs in
        match Consensus_task.check_run ~inputs r with
        | Ok () -> ()
        | Error viol ->
          Alcotest.failf "%s seed %d: %a" machine.Machine.name seed
            Consensus_task.pp_violation viol
      done)
    [
      Consensus_protocols.from_queue ();
      Consensus_protocols.from_fetch_and_add ();
      Consensus_protocols.from_swap ();
    ];
  (* CAS seats any number of processes. *)
  let machine, specs = Consensus_protocols.from_compare_and_swap () in
  for seed = 1 to 30 do
    let inputs = Kset_task.distinct_inputs 5 in
    let r = run_consensus ~machine ~specs ~procs:5 ~seed inputs in
    match Consensus_task.check_run ~inputs r with
    | Ok () -> ()
    | Error viol ->
      Alcotest.failf "cas seed %d: %a" seed Consensus_task.pp_violation viol
  done

let () =
  Alcotest.run "protocols"
    [
      ( "algorithm-2",
        [
          Alcotest.test_case "solo p decides own input" `Quick
            test_dac_solo_p_decides_own_input;
          Alcotest.test_case "round-robin all binary inputs" `Quick
            test_dac_round_robin_agreement;
          Alcotest.test_case "100 random schedules (n=5)" `Quick
            test_dac_random_schedules;
          Alcotest.test_case "crash tolerance" `Quick test_dac_crash_tolerance;
          Alcotest.test_case "via O_n facet (Obs 5.1b)" `Quick test_dac_via_o_n;
        ] );
      ( "dac-checkers",
        [
          Alcotest.test_case "violations flagged" `Quick
            test_dac_checkers_flag_violations;
          Alcotest.test_case "nontriviality" `Quick test_nontriviality_checker;
        ] );
      ( "consensus",
        [
          Alcotest.test_case "from m-consensus" `Quick test_consensus_from_obj;
          Alcotest.test_case "from (n,m)-PAC, O_n, sticky, TAS, O'_n" `Quick
            test_consensus_from_pac_nm_and_sticky;
        ] );
      ( "kset",
        [
          Alcotest.test_case "partition" `Quick test_kset_partition;
          Alcotest.test_case "from 2-SA" `Quick test_kset_from_sa2;
          Alcotest.test_case "from (n,k)-SA" `Quick test_kset_from_nk_sa;
          Alcotest.test_case "from O'_n and O_n" `Quick
            test_kset_from_oprime_and_o_n;
          Alcotest.test_case "parameter validation" `Quick
            test_kset_rejects_bad_k;
        ] );
      ( "safe-agreement",
        [
          Alcotest.test_case "crash-free runs decide" `Quick
            test_safe_agreement_crash_free_runs;
          Alcotest.test_case "exhaustive safety (n=2,3)" `Quick
            test_safe_agreement_exhaustive_safety;
          Alcotest.test_case "unsafe-zone crash blocks" `Quick
            test_safe_agreement_unsafe_zone_blocks;
          Alcotest.test_case "conditional termination (exhaustive)" `Quick
            test_safe_agreement_conditional_termination;
        ] );
      ( "obstruction-free",
        [
          Alcotest.test_case "solo decides" `Quick
            test_of_consensus_solo_decides;
          Alcotest.test_case "random schedules terminate safely" `Quick
            test_of_consensus_random_terminates_safely;
          Alcotest.test_case "lockstep livelocks" `Quick
            test_of_consensus_lockstep_livelocks;
          Alcotest.test_case "bounded exhaustive safety + OF" `Quick
            test_of_consensus_bounded_exhaustive_safety;
        ] );
      ( "classic-consensus",
        [
          Alcotest.test_case "queue/faa/swap/cas constructions" `Quick
            test_consensus_from_classic_objects;
        ] );
      ( "candidates",
        [
          Alcotest.test_case "flp-write-read disagrees" `Quick
            test_flp_write_read_disagrees;
          Alcotest.test_case "flp-spin not wait-free" `Quick
            test_flp_spin_not_wait_free;
          Alcotest.test_case "pac-retry livelocks" `Quick
            test_pac_retry_livelocks_under_alternation;
        ] );
    ]
