(* State-space reduction: the symmetry quotient (Canon), commit-step
   pruning, oracle agreement on quotiented graphs, truncation-sound
   witness search, and checkpoint/resume compatibility across
   reduction modes. *)

open Lbsa

(* --- protocol instances with their symmetry groups --------------------- *)

let dac3 () =
  let n = 3 in
  ( Dac_from_pac.machine ~n,
    Dac_from_pac.specs ~n,
    [| Value.int 1; Value.int 0; Value.int 0 |],
    Canon.dac ~n )

let cons2 () =
  let machine, specs = Consensus_protocols.from_consensus_obj ~m:2 in
  (machine, specs, [| Value.int 0; Value.int 1 |], Canon.exchangeable ~n:2 ())

let kset22 () =
  let machine, specs = Kset_protocols.partition ~m:2 ~k:2 in
  ( machine,
    specs,
    Kset_task.distinct_inputs 4,
    Canon.kset_partition ~m:2 ~k:2 )

let dac_frozen obj state = obj = 0 && Pac.is_upset state

let sym canon = { Cgraph.rname = "sym"; canon; sleep = false; frozen = None }

let sym_sleep ?frozen canon =
  { Cgraph.rname = "sym+sleep"; canon; sleep = true; frozen }

(* --- the quotient map: permutation invariance on reachable states ------ *)

let test_group_orders () =
  Alcotest.(check int) "exchangeable 3" 6
    (Canon.order (Canon.exchangeable ~n:3 ()));
  Alcotest.(check int) "exchangeable 3 fixing one" 2
    (Canon.order (Canon.exchangeable ~n:3 ~fixed:[ 0 ] ()));
  Alcotest.(check int) "dac 3 fixes p0" 2 (Canon.order (Canon.dac ~n:3));
  Alcotest.(check int) "dac 4 fixes p0" 6 (Canon.order (Canon.dac ~n:4));
  Alcotest.(check int) "kset 2,2: (2!)^2 * 2!" 8
    (Canon.order (Canon.kset_partition ~m:2 ~k:2));
  (* The dac group must never move the distinguished process 0. *)
  List.iter
    (fun (a : Canon.auto) ->
      Alcotest.(check int) "p0 fixed" 0 a.Canon.proc.(0))
    (Canon.dac ~n:4).Canon.autos

(* [canonical] must send every member of an orbit to the same
   representative, that representative must be the [Config.compare]-least
   orbit element, and [Config.hash] must agree wherever [compare] says
   equal — the properties the explorer's dedup table keys on. *)
let check_orbit_stability label group graph =
  Cgraph.iter_nodes
    (fun id c ->
      let rep = Canon.canonical group c in
      if not (Config.equal (Canon.canonical group rep) rep) then
        Alcotest.failf "%s: canonical not idempotent at node %d" label id;
      if Config.compare rep c > 0 then
        Alcotest.failf "%s: canonical exceeds its argument at node %d" label
          id;
      (match Canon.orbit group c with
      | least :: _ ->
        if not (Config.equal rep least) then
          Alcotest.failf "%s: canonical is not the orbit minimum at node %d"
            label id
      | [] -> Alcotest.failf "%s: empty orbit at node %d" label id);
      List.iter
        (fun a ->
          let rep' = Canon.canonical group (Canon.apply a c) in
          if not (Config.equal rep' rep) then
            Alcotest.failf
              "%s: node %d: permuted image canonizes to a different \
               representative"
              label id;
          if Config.compare rep' rep <> 0 then
            Alcotest.failf "%s: node %d: compare disagrees with equal" label
              id;
          if Config.hash rep' <> Config.hash rep then
            Alcotest.failf "%s: node %d: orbit representatives hash apart"
              label id)
        group.Canon.autos)
    graph

let test_canonical_permutation_stable () =
  List.iter
    (fun (label, (machine, specs, inputs, group)) ->
      let graph = Cgraph.build ~machine ~specs ~inputs () in
      check_orbit_stability label group graph)
    [
      ("dac:3", dac3 ());
      ("cons:2", cons2 ());
      ("kset 2,2", kset22 ());
    ]

let test_near_symmetric_orbits () =
  (* Adversarial hand-built configurations: genuinely symmetric pairs
     must merge, near-symmetric ones — where only one of the parallel
     arrays is mirrored — must not. *)
  let g = Canon.exchangeable ~n:2 () in
  let a = Value.int 0 and b = Value.int 1 in
  let mk locals status =
    { Config.locals; objects = [| Value.int 7 |]; status }
  in
  let rep c = Canon.canonical g c in
  (* mirror images: same orbit *)
  let c1 = mk [| a; b |] [| Config.Running; Config.Running |] in
  let c2 = mk [| b; a |] [| Config.Running; Config.Running |] in
  Alcotest.(check bool) "mirrored locals merge" true
    (Config.equal (rep c1) (rep c2));
  (* mirroring locals AND statuses together: same orbit *)
  let c3 = mk [| a; b |] [| Config.Decided a; Config.Running |] in
  let c4 = mk [| b; a |] [| Config.Running; Config.Decided a |] in
  Alcotest.(check bool) "jointly mirrored config merges" true
    (Config.equal (rep c3) (rep c4));
  Alcotest.(check int) "orbit hashes agree" (Config.hash (rep c3))
    (Config.hash (rep c4));
  (* mirroring only the locals, statuses left in place: different orbit *)
  let c5 = mk [| b; a |] [| Config.Decided a; Config.Running |] in
  Alcotest.(check bool) "half-mirrored config must NOT merge" false
    (Config.equal (rep c3) (rep c5));
  (* same shape, different decision value: different orbit *)
  let c6 = mk [| a; b |] [| Config.Decided b; Config.Running |] in
  Alcotest.(check bool) "different decisions must NOT merge" false
    (Config.equal (rep c3) (rep c6));
  (* a group that fixes pid 0 must not merge the mirror pair *)
  let fixed = Canon.exchangeable ~n:2 ~fixed:[ 0 ] () in
  Alcotest.(check bool) "fixed-pid group keeps mirror images apart" false
    (Config.equal (Canon.canonical fixed c1) (Canon.canonical fixed c2))

(* --- reduced builds against the CMap oracle ---------------------------- *)

let check_same_graph label (g1 : Cgraph.t) (g2 : Cgraph.t) =
  Alcotest.(check int)
    (label ^ ": node count")
    (Cgraph.n_nodes g1) (Cgraph.n_nodes g2);
  Alcotest.(check int)
    (label ^ ": edge count")
    (Cgraph.n_edges g1) (Cgraph.n_edges g2);
  Alcotest.(check int) (label ^ ": initial") g1.Cgraph.initial g2.Cgraph.initial;
  for id = 0 to Cgraph.n_nodes g1 - 1 do
    if not (Config.equal (Cgraph.node g1 id) (Cgraph.node g2 id)) then
      Alcotest.failf "%s: node %d differs" label id;
    if Cgraph.out_edges g1 id <> Cgraph.out_edges g2 id then
      Alcotest.failf "%s: out-edges of node %d differ" label id
  done

let test_reduced_build_matches_cmap_oracle () =
  (* The parallel explorer and the seed CMap explorer share one
     reduction step; under every mode they must still produce the same
     graph, node ids and edge order included. *)
  List.iter
    (fun (label, (machine, specs, inputs, canon), frozen) ->
      List.iter
        (fun reduce ->
          let g = Cgraph.build ~reduce ~machine ~specs ~inputs () in
          let oracle = Cgraph.build_cmap ~reduce ~machine ~specs ~inputs () in
          check_same_graph
            (Fmt.str "%s [%s]" label reduce.Cgraph.rname)
            g oracle)
        [ sym canon; sym_sleep ?frozen canon ])
    [
      ("dac:3", dac3 (), Some dac_frozen);
      ("cons:2", cons2 (), None);
      ("kset 2,2", kset22 (), None);
    ]

(* --- verdict agreement and the acceptance ratio ------------------------ *)

let check_done label (v : Solvability.verdict) =
  match v.Solvability.outcome with
  | Supervisor.Done -> ()
  | o -> Alcotest.failf "%s: partial outcome %a" label Supervisor.pp_outcome o

let test_dac3_verdicts_agree_and_ratio () =
  let machine, specs, inputs, canon = dac3 () in
  let check reduce = Solvability.check_dac ?reduce ~machine ~specs ~inputs () in
  let v_none = check None in
  let v_sym = check (Some (sym canon)) in
  let v_sleep = check (Some (sym_sleep ~frozen:dac_frozen canon)) in
  List.iter (fun (l, v) -> check_done l v)
    [ ("none", v_none); ("sym", v_sym); ("sym+sleep", v_sleep) ];
  Alcotest.(check bool) "none ok" true v_none.Solvability.ok;
  Alcotest.(check bool) "sym agrees" v_none.Solvability.ok v_sym.Solvability.ok;
  Alcotest.(check bool) "sym+sleep agrees" v_none.Solvability.ok
    v_sleep.Solvability.ok;
  Alcotest.(check bool) "sym explores fewer states" true
    (v_sym.Solvability.states < v_none.Solvability.states);
  Alcotest.(check bool) "sleep explores no more than sym" true
    (v_sleep.Solvability.states <= v_sym.Solvability.states);
  (* The acceptance floor: sym+sleep must explore at least 3x fewer
     states than the unreduced build on dac:3. *)
  if v_none.Solvability.states < 3 * v_sleep.Solvability.states then
    Alcotest.failf "reduction ratio below 3x on dac:3: %d vs %d states"
      v_none.Solvability.states v_sleep.Solvability.states

let test_verdicts_agree_across_modes () =
  (* Consensus and k-set checkers, plus the dac binary input family and
     two failing candidates: ok must agree mode-by-mode, for passing and
     failing protocols alike. *)
  let machine, specs, inputs, canon = cons2 () in
  let cons reduce =
    (Solvability.check_consensus ?reduce ~machine ~specs ~inputs ())
      .Solvability.ok
  in
  Alcotest.(check bool) "cons:2 sym" (cons None) (cons (Some (sym canon)));
  Alcotest.(check bool) "cons:2 sym+sleep" (cons None)
    (cons (Some (sym_sleep canon)));
  let machine, specs, inputs, canon = kset22 () in
  let kset reduce =
    (Solvability.check_kset ?reduce ~machine ~specs ~k:2 ~inputs ())
      .Solvability.ok
  in
  Alcotest.(check bool) "kset 2,2 sym" (kset None) (kset (Some (sym canon)));
  Alcotest.(check bool) "kset 2,2 sym+sleep" (kset None)
    (kset (Some (sym_sleep canon)));
  (* full binary family on dac:3 *)
  let machine, specs, _, canon = dac3 () in
  let family reduce =
    let v =
      Solvability.for_all_inputs
        (fun inputs -> Solvability.check_dac ?reduce ~machine ~specs ~inputs ())
        (Dac.binary_inputs 3)
    in
    v.Solvability.ok
  in
  Alcotest.(check bool) "dac:3 family sym" (family None)
    (family (Some (sym canon)));
  Alcotest.(check bool) "dac:3 family sym+sleep" (family None)
    (family (Some (sym_sleep ~frozen:dac_frozen canon)));
  (* a buggy dac candidate must keep failing under reduction *)
  let machine, specs = Candidates.dac3_sa2_then_cons2 in
  let broken reduce =
    let v =
      Solvability.for_all_inputs
        (fun inputs -> Solvability.check_dac ?reduce ~machine ~specs ~inputs ())
        (Dac.binary_inputs 3)
    in
    v.Solvability.ok
  in
  Alcotest.(check bool) "broken candidate fails unreduced" false (broken None);
  Alcotest.(check bool) "broken candidate fails under sym" false
    (broken (Some (sym canon)));
  Alcotest.(check bool) "broken candidate fails under sym+sleep" false
    (broken (Some (sym_sleep ~frozen:dac_frozen canon)))

(* --- valence on reduced graphs ----------------------------------------- *)

let equal_class a b =
  match (a, b) with
  | Valence.Bivalent, Valence.Bivalent -> true
  | Valence.Undecided, Valence.Undecided -> true
  | Valence.Valent x, Valence.Valent y -> Value.equal x y
  | _ -> false

let test_valence_agreement_on_reduced_graphs () =
  (* On each reduced graph both valence engines must agree node-by-node,
     and the initial classification must be stable across modes. *)
  List.iter
    (fun (label, (machine, specs, inputs, canon), frozen) ->
      let initial_class reduce =
        let g = Cgraph.build ?reduce ~machine ~specs ~inputs () in
        let a = Valence.analyze g in
        let oracle = Valence.analyze_fixpoint g in
        for id = 0 to Cgraph.n_nodes g - 1 do
          if
            not (equal_class (Valence.classify a id) (Valence.classify oracle id))
          then
            Alcotest.failf "%s: valence engines disagree at node %d" label id
        done;
        Valence.classify a g.Cgraph.initial
      in
      let c_none = initial_class None in
      List.iter
        (fun reduce ->
          let c = initial_class (Some reduce) in
          if not (equal_class c_none c) then
            Alcotest.failf "%s [%s]: initial valence differs: %a vs %a" label
              reduce.Cgraph.rname Valence.pp_classification c_none
              Valence.pp_classification c)
        [ sym canon; sym_sleep ?frozen canon ])
    [
      ("dac:3", dac3 (), Some dac_frozen);
      ("cons:2", cons2 (), None);
    ]

(* --- truncation-sound witness search (regression) ---------------------- *)

let test_witness_search_truncation_sound () =
  (* A correct protocol under a tiny state bound: the search must answer
     Search_truncated — answering No_witness on a cut-off graph was the
     false negative this guards against. *)
  let machine, specs, inputs, _ = cons2 () in
  (match Solvability.consensus_witness ~max_states:2 ~machine ~specs ~inputs ()
   with
  | Solvability.Search_truncated o ->
    Alcotest.(check bool) "partial outcome" true (Supervisor.is_partial o)
  | Solvability.No_witness ->
    Alcotest.fail "truncated search claimed a definitive no-witness"
  | Solvability.Witness w ->
    Alcotest.failf "correct protocol produced a witness: %s"
      w.Solvability.violation);
  (* unbounded, the answer is definitive *)
  (match Solvability.consensus_witness ~machine ~specs ~inputs () with
  | Solvability.No_witness -> ()
  | Solvability.Search_truncated _ ->
    Alcotest.fail "complete search reported truncation"
  | Solvability.Witness w ->
    Alcotest.failf "correct protocol produced a witness: %s"
      w.Solvability.violation);
  (* A broken protocol: a found witness stays definitive, and a bound
     too small to reach the violation must again answer truncated, never
     no-witness. *)
  let machine, specs = Candidates.flp_write_read in
  let inputs = [| Value.int 0; Value.int 1 |] in
  (match Solvability.consensus_witness ~machine ~specs ~inputs () with
  | Solvability.Witness _ -> ()
  | _ -> Alcotest.fail "expected a disagreement witness");
  match Solvability.consensus_witness ~max_states:2 ~machine ~specs ~inputs ()
  with
  | Solvability.No_witness ->
    Alcotest.fail "truncated search on a broken protocol claimed no witness"
  | Solvability.Search_truncated _ | Solvability.Witness _ -> ()

(* --- resume compatibility ---------------------------------------------- *)

let test_resume_rejects_reduction_mismatch () =
  let machine, specs, inputs, canon = dac3 () in
  let reduce = sym canon in
  let partial =
    Cgraph.build ~max_states:20 ~reduce ~machine ~specs ~inputs ()
  in
  Alcotest.(check bool) "bound truncates" true partial.Cgraph.truncated;
  let s = Option.get partial.Cgraph.suspended in
  (match Cgraph.build ~resume:s ~machine ~specs ~inputs () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "resume under a different reduction must be rejected");
  (match
     Cgraph.build ~resume:s
       ~reduce:(sym_sleep ~frozen:dac_frozen canon)
       ~machine ~specs ~inputs ()
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "sym checkpoint must not resume under sym+sleep");
  (* matching mode: the resumed build is the uninterrupted build *)
  let resumed = Cgraph.build ~resume:s ~reduce ~machine ~specs ~inputs () in
  let full = Cgraph.build ~reduce ~machine ~specs ~inputs () in
  check_same_graph "resumed vs uninterrupted [sym]" resumed full

(* --- the CLI resume contract (exit 2 on divergent parameters) ---------- *)

let with_cli k =
  let exe =
    Filename.concat
      (Filename.dirname Sys.executable_name)
      (Filename.concat ".." (Filename.concat "bin" "lbsa_cli.exe"))
  in
  if not (Sys.file_exists exe) then
    Alcotest.fail (Fmt.str "CLI executable not found at %s" exe);
  let full = Filename.temp_file "lbsa-full" ".txt" in
  let resumed = Filename.temp_file "lbsa-resumed" ".txt" in
  let ckpt = Filename.temp_file "lbsa-solve" ".ckpt" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun f -> if Sys.file_exists f then Sys.remove f)
        [ full; resumed; ckpt ])
    (fun () -> k ~q:Filename.quote ~exe ~full ~resumed ~ckpt)

let run fmt = Fmt.kstr Sys.command fmt

let test_cli_resume_rejects_reduce_mismatch () =
  (* `lbsa solve --resume` with a different --reduce must refuse with
     exit 2 rather than silently diverge from the checkpointed run. *)
  with_cli (fun ~q ~exe ~full:_ ~resumed:_ ~ckpt ->
      Alcotest.(check int) "deadline-0 sym run is partial" 2
        (run
           "%s solve dac -n 3 --reduce sym --deadline 0 --checkpoint %s > \
            /dev/null 2>&1"
           (q exe) (q ckpt));
      Alcotest.(check int) "resume without --reduce sym is refused" 2
        (run "%s solve dac -n 3 --resume %s > /dev/null 2>&1" (q exe) (q ckpt));
      Alcotest.(check int) "resume with --reduce sym+sleep is refused" 2
        (run "%s solve dac -n 3 --reduce sym+sleep --resume %s > /dev/null 2>&1"
           (q exe) (q ckpt));
      Alcotest.(check int) "resume with matching --reduce passes" 0
        (run "%s solve dac -n 3 --reduce sym --resume %s > /dev/null 2>&1"
           (q exe) (q ckpt)))

let test_cli_resume_other_domains_byte_identical () =
  (* --domains is a budget knob, not a graph parameter: resuming with a
     different domain count must reproduce the uninterrupted run
     byte-for-byte. *)
  with_cli (fun ~q ~exe ~full ~resumed ~ckpt ->
      Alcotest.(check int) "uninterrupted 1-domain run passes" 0
        (run "%s solve dac -n 3 --reduce sym --domains 1 > %s 2>/dev/null"
           (q exe) (q full));
      Alcotest.(check int) "deadline-0 run is partial" 2
        (run
           "%s solve dac -n 3 --reduce sym --domains 1 --deadline 0 \
            --checkpoint %s > /dev/null 2>&1"
           (q exe) (q ckpt));
      Alcotest.(check int) "resume with --domains 2 passes" 0
        (run
           "%s solve dac -n 3 --reduce sym --domains 2 --resume %s > %s \
            2>/dev/null"
           (q exe) (q ckpt) (q resumed));
      Alcotest.(check int) "stdout is byte-for-byte identical" 0
        (run "cmp -s %s %s" (q full) (q resumed)))

let () =
  Alcotest.run "reduction"
    [
      ( "canon",
        [
          Alcotest.test_case "group orders" `Quick test_group_orders;
          Alcotest.test_case "canonical permutation-stable" `Quick
            test_canonical_permutation_stable;
          Alcotest.test_case "near-symmetric orbits" `Quick
            test_near_symmetric_orbits;
        ] );
      ( "explorer",
        [
          Alcotest.test_case "reduced build matches CMap oracle" `Quick
            test_reduced_build_matches_cmap_oracle;
          Alcotest.test_case "dac:3 verdicts agree, ratio >= 3x" `Quick
            test_dac3_verdicts_agree_and_ratio;
          Alcotest.test_case "verdicts agree across modes" `Slow
            test_verdicts_agree_across_modes;
          Alcotest.test_case "valence agreement on reduced graphs" `Quick
            test_valence_agreement_on_reduced_graphs;
        ] );
      ( "soundness regressions",
        [
          Alcotest.test_case "witness search is truncation-sound" `Quick
            test_witness_search_truncation_sound;
          Alcotest.test_case "resume rejects reduction mismatch" `Quick
            test_resume_rejects_reduction_mismatch;
        ] );
      ( "cli resume contract",
        [
          Alcotest.test_case "divergent --reduce is refused (exit 2)" `Quick
            test_cli_resume_rejects_reduce_mismatch;
          Alcotest.test_case "divergent --domains stays byte-identical" `Quick
            test_cli_resume_other_domains_byte_identical;
        ] );
    ]
