(* The runtime layer: machines, configurations, schedulers, executor,
   traces. *)

open Lbsa

let v = Alcotest.testable Value.pp Value.equal

(* A tiny two-phase machine: write own input to register pid, read the
   other register, decide the pair. *)
let two_phase : Machine.t * Obj_spec.t array =
  let name = "two-phase" in
  let init ~pid:_ ~input = Value.(pair (sym "writing", input)) in
  let delta ~pid state =
    match state with
    | { Value.node = Pair ({ node = Sym "writing"; _ }, x); _ } ->
      Machine.invoke pid (Register.write x) (fun _ ->
          Value.(pair (sym "reading", x)))
    | { Value.node = Pair ({ node = Sym "reading"; _ }, x); _ } ->
      Machine.invoke (1 - pid) Register.read (fun other ->
          Value.(pair (sym "halt", pair (x, other))))
    | { Value.node = Pair ({ node = Sym "halt"; _ }, r); _ } -> Machine.Decide r
    | s -> Machine.bad_state ~machine:name ~pid s
  in
  (Machine.make ~name ~init ~delta, [| Register.spec (); Register.spec () |])

let inputs01 = [| Value.int 0; Value.int 1 |]

let test_round_robin_runs_to_completion () =
  let machine, specs = two_phase in
  let r =
    Executor.run ~machine ~specs ~inputs:inputs01
      ~scheduler:(Scheduler.round_robin ~n:2) ()
  in
  Alcotest.(check bool) "halted" true (r.Executor.stop = Executor.All_halted);
  Alcotest.(check int) "6 steps (2 ops + decide each)" 6 r.Executor.steps;
  (* Round-robin interleaves fully: both see each other's write. *)
  Alcotest.(check (option v)) "p0 decision"
    (Some Value.(pair (int 0, int 1)))
    (Config.decision r.Executor.final 0);
  Alcotest.(check (option v)) "p1 decision"
    (Some Value.(pair (int 1, int 0)))
    (Config.decision r.Executor.final 1)

let test_solo_scheduler () =
  let machine, specs = two_phase in
  let r =
    Executor.run ~machine ~specs ~inputs:inputs01 ~scheduler:(Scheduler.solo 0) ()
  in
  Alcotest.(check bool) "scheduler stopped after p0 halted" true
    (r.Executor.stop = Executor.Scheduler_stopped);
  Alcotest.(check (option v)) "p0 saw NIL"
    (Some Value.(pair (int 0, nil)))
    (Config.decision r.Executor.final 0);
  Alcotest.(check (option v)) "p1 never ran" None
    (Config.decision r.Executor.final 1)

let test_fixed_scheduler_and_trace () =
  let machine, specs = two_phase in
  let r =
    Executor.run ~machine ~specs ~inputs:inputs01
      ~scheduler:(Scheduler.fixed [ 0; 0; 1; 1; 1; 0 ])
      ()
  in
  Alcotest.(check int) "trace length" 6 (Trace.length r.Executor.trace);
  (* p0 wrote and read before p1 wrote: p0 sees NIL, p1 sees 0. *)
  Alcotest.(check (option v)) "p0 decision"
    (Some Value.(pair (int 0, nil)))
    (Config.decision r.Executor.final 0);
  Alcotest.(check (option v)) "p1 decision"
    (Some Value.(pair (int 1, int 0)))
    (Config.decision r.Executor.final 1);
  (* Trace pids follow the fixed schedule. *)
  let pids =
    List.map (fun (e : Trace.entry) -> Trace.pid_of_event e.event) r.Executor.trace
  in
  Alcotest.(check (list int)) "schedule respected" [ 0; 0; 1; 1; 1; 0 ] pids

let test_random_scheduler_deterministic_by_seed () =
  let machine, specs = two_phase in
  let run seed =
    let r =
      Executor.run ~machine ~specs ~inputs:inputs01
        ~scheduler:(Scheduler.random ~seed) ()
    in
    List.map
      (fun (e : Trace.entry) -> Trace.pid_of_event e.event)
      r.Executor.trace
  in
  Alcotest.(check (list int)) "same seed, same schedule" (run 7) (run 7);
  Alcotest.(check bool) "halts for any seed" true
    (List.for_all (fun seed -> List.length (run seed) = 6) [ 1; 2; 3; 4; 5 ])

let test_starving_scheduler () =
  let machine, specs = two_phase in
  let r =
    Executor.run ~machine ~specs ~inputs:inputs01
      ~scheduler:(Scheduler.starving 0 (Scheduler.round_robin ~n:2))
      ()
  in
  (* p1 runs to completion first; p0 then sees p1's write. *)
  Alcotest.(check (option v)) "p0 saw p1's value"
    (Some Value.(pair (int 0, int 1)))
    (Config.decision r.Executor.final 0)

let test_excluding_scheduler () =
  let machine, specs = two_phase in
  let r =
    Executor.run ~machine ~specs ~inputs:inputs01
      ~scheduler:(Scheduler.excluding [ 1 ] (Scheduler.round_robin ~n:2))
      ()
  in
  Alcotest.(check (option v)) "p1 crashed-like: never decided" None
    (Config.decision r.Executor.final 1);
  Alcotest.(check (option v)) "p0 decided alone"
    (Some Value.(pair (int 0, nil)))
    (Config.decision r.Executor.final 0)

let test_run_solo_continuation () =
  let machine, specs = two_phase in
  (* Let p0 take one step, then p1 solo to completion. *)
  let r =
    Executor.run ~machine ~specs ~inputs:inputs01
      ~scheduler:(Scheduler.fixed [ 0 ]) ()
  in
  let r2 = Executor.run_solo ~machine ~specs r.Executor.final 1 in
  Alcotest.(check bool) "p1 halted" true (r2.Executor.stop = Executor.All_halted);
  Alcotest.(check (option v)) "p1 saw p0's write"
    (Some Value.(pair (int 1, int 0)))
    (Config.decision r2.Executor.final 1)

let test_config_crash () =
  let machine, specs = two_phase in
  let c = Config.initial ~machine ~specs ~inputs:inputs01 in
  let c = Config.crash c 1 in
  Alcotest.(check (list int)) "only p0 runnable" [ 0 ] (Config.running c);
  Alcotest.(check bool) "not all halted" false (Config.all_halted c)

let test_config_compare () =
  let machine, specs = two_phase in
  let c1 = Config.initial ~machine ~specs ~inputs:inputs01 in
  let c2 = Config.initial ~machine ~specs ~inputs:inputs01 in
  Alcotest.(check bool) "equal initials" true (Config.equal c1 c2);
  let c3, _ = Config.step ~machine ~specs ~choice:(fun _ -> 0) c1 0 in
  Alcotest.(check bool) "step changes config" false (Config.equal c1 c3)

let test_step_limit () =
  (* A machine that spins forever on a register read. *)
  let name = "spinner" in
  let machine =
    Machine.make ~name
      ~init:(fun ~pid:_ ~input:_ -> Value.sym "spin")
      ~delta:(fun ~pid state ->
        match state with
        | { Value.node = Sym "spin"; _ } ->
          Machine.invoke 0 Register.read (fun _ -> Value.sym "spin")
        | s -> Machine.bad_state ~machine:name ~pid s)
  in
  let r =
    Executor.run ~max_steps:50 ~machine ~specs:[| Register.spec () |]
      ~inputs:[| Value.unit_ |] ~scheduler:(Scheduler.solo 0) ()
  in
  Alcotest.(check bool) "fuel ran out" true (r.Executor.stop = Executor.Step_limit);
  Alcotest.(check int) "exactly max_steps" 50 r.Executor.steps

let test_nondet_resolution () =
  (* Two processes race proposes into a 2-SA object; under Random nondet
     the decided values are always among the proposals. *)
  let machine =
    Consensus_protocols.one_shot ~name:"sa2-race" ~mk_op:Sa2.propose ()
  in
  let specs = [| Sa2.spec () |] in
  for seed = 1 to 20 do
    let r =
      Executor.run
        ~nondet:(Executor.Random (Prng.create seed))
        ~machine ~specs ~inputs:inputs01
        ~scheduler:(Scheduler.random ~seed) ()
    in
    List.iter
      (fun d ->
        Alcotest.(check bool) "decision among proposals" true
          (List.mem d [ Value.int 0; Value.int 1 ]))
      (Config.decisions r.Executor.final)
  done

let test_strategy_nondet () =
  (* A custom adversary that always picks the branch with the largest
     2-SA STATE response: after both inputs are in STATE, every response
     is the maximum (1), so both processes decide 1. *)
  let machine =
    Consensus_protocols.one_shot ~name:"sa2-max" ~mk_op:Sa2.propose ()
  in
  let specs = [| Sa2.spec () |] in
  let pick_max (configs : Config.t list) =
    (* Branch list order follows Set_ element order (sorted ascending),
       so the last branch carries the largest response. *)
    List.length configs - 1
  in
  let r =
    Executor.run
      ~nondet:(Executor.Strategy pick_max)
      ~machine ~specs ~inputs:inputs01
      ~scheduler:(Scheduler.fixed [ 0; 1; 0; 1 ]) ()
  in
  (* p0 proposes 0 (gets 0, STATE={0}); p1 proposes 1: branches sorted
     {0,1}, adversary picks 1.  Decisions: 0 and 1... the adversary
     maximizes per-branch, so p1 decides 1 while p0 already had 0. *)
  Alcotest.(check (option v)) "p0 decided 0" (Some (Value.int 0))
    (Config.decision r.Executor.final 0);
  Alcotest.(check (option v)) "p1 decided 1 (max branch)" (Some (Value.int 1))
    (Config.decision r.Executor.final 1)

let test_machine_bad_state_raises () =
  let machine, specs = two_phase in
  let c = Config.initial ~machine ~specs ~inputs:inputs01 in
  let broken = { c with Config.locals = [| Value.sym "garbage"; Value.sym "garbage" |] } in
  match Config.step_branches ~machine ~specs broken 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected bad_state to raise"

let test_prefix_scheduler () =
  let machine, specs = two_phase in
  (* Prefix gives p1 a head start, then round-robin finishes. *)
  let r =
    Executor.run ~machine ~specs ~inputs:inputs01
      ~scheduler:(Scheduler.prefix [ 1; 1 ] (Scheduler.round_robin ~n:2)) ()
  in
  Alcotest.(check bool) "halted" true (r.Executor.stop = Executor.All_halted);
  (* p1 wrote and read before p0 wrote: p1 saw NIL. *)
  Alcotest.(check (option v)) "p1 read NIL"
    (Some Value.(pair (int 1, nil)))
    (Config.decision r.Executor.final 1);
  Alcotest.(check (option v)) "p0 read p1's value"
    (Some Value.(pair (int 0, int 1)))
    (Config.decision r.Executor.final 0)

(* --- fault injection ---------------------------------------------------- *)

let test_fault_plan () =
  let machine, specs = two_phase in
  (* p1 crashes after its first step: p0 reads p1's write but p1 never
     decides. *)
  let scheduler =
    Fault.apply [ (1, 1) ] (Scheduler.starving 0 (Scheduler.round_robin ~n:2))
  in
  let r = Executor.run ~machine ~specs ~inputs:inputs01 ~scheduler () in
  Alcotest.(check (option v)) "p1 never decided" None
    (Config.decision r.Executor.final 1);
  Alcotest.(check (option v)) "p0 saw p1's write"
    (Some Value.(pair (int 0, int 1)))
    (Config.decision r.Executor.final 0)

let test_fault_enumerate () =
  let plans = Fault.enumerate ~victims:[ 1; 2 ] ~max_steps:2 in
  (* Each victim: survive or crash after 0/1/2 steps = 4 options. *)
  Alcotest.(check int) "4 * 4 plans" 16 (List.length plans);
  (* Algorithm 2 stays safe under every crash plan for the non-p
     processes. *)
  let n = 3 in
  let machine = Dac_from_pac.machine ~n in
  let specs = Dac_from_pac.specs ~n in
  let inputs = [| Value.int 1; Value.int 0; Value.int 0 |] in
  List.iter
    (fun plan ->
      let scheduler = Fault.apply plan (Scheduler.round_robin ~n) in
      let r = Executor.run ~machine ~specs ~inputs ~scheduler () in
      match Dac.check_safety ~inputs ~trace:r.Executor.trace r.Executor.final with
      | Ok () -> ()
      | Error viol ->
        Alcotest.failf "plan %a: %a" Fault.pp_plan plan Dac.pp_violation viol)
    plans

let test_fault_random_plan_reproducible () =
  let mk seed =
    Fault.random ~prng:(Prng.create seed) ~victims:[ 1; 2; 3 ] ~max_steps:5
  in
  Alcotest.(check bool) "same seed same plan" true (mk 4 = mk 4)

let test_trace_lanes () =
  let machine, specs = two_phase in
  let r =
    Executor.run ~machine ~specs ~inputs:inputs01
      ~scheduler:(Scheduler.round_robin ~n:2) ()
  in
  let rendered = Fmt.str "%a" (Trace.pp_lanes ~n:2) r.Executor.trace in
  Alcotest.(check bool) "has header" true
    (String.length rendered > 0 && String.sub rendered 0 2 = "p0");
  (* One line per step plus the header. *)
  let lines = String.split_on_char '\n' (String.trim rendered) in
  Alcotest.(check int) "7 lines" 7 (List.length lines)

(* --- regressions: hashing, scheduler/fault reuse, prng ------------------ *)

let test_config_hash_deep_differences () =
  (* Configurations that differ only deep inside a 30-element list used
     to collide en masse under the shallow [Hashtbl.hash] (it inspects
     ~10 heap nodes); the element-wise hash must keep them essentially
     all distinct. *)
  let mk i =
    {
      Config.locals =
        [|
          Value.list (List.init 30 (fun j -> Value.int (if j = 29 then i else 0)));
        |];
      objects = [| Value.nil |];
      status = [| Config.Running |];
    }
  in
  let hashes = List.init 1000 (fun i -> Config.hash (mk i)) in
  let distinct = List.length (Listx.sort_uniq Stdlib.compare hashes) in
  Alcotest.(check bool)
    (Fmt.str "%d distinct hashes out of 1000" distinct)
    true (distinct >= 990)

let test_fault_apply_reusable () =
  let machine, specs = two_phase in
  let scheduler =
    Fault.apply [ (1, 1) ] (Scheduler.starving 0 (Scheduler.round_robin ~n:2))
  in
  let run () = Executor.run ~machine ~specs ~inputs:inputs01 ~scheduler () in
  let r1 = run () in
  let r2 = run () in
  (* The crash budgets are per-run: the second run must replay the first
     (p1 still gets its one step before crashing, so p0 still observes
     p1's write) instead of starting with the victim pre-crashed. *)
  Alcotest.(check int) "same number of steps" r1.Executor.steps r2.Executor.steps;
  Alcotest.(check (option v)) "p0 saw p1's write again"
    (Some Value.(pair (int 0, int 1)))
    (Config.decision r2.Executor.final 0);
  Alcotest.(check (option v)) "p1 still crashed undecided" None
    (Config.decision r2.Executor.final 1)

let test_random_scheduler_reusable () =
  let machine, specs = two_phase in
  let scheduler = Scheduler.random ~seed:11 in
  let run () = Executor.run ~machine ~specs ~inputs:inputs01 ~scheduler () in
  let r1 = run () in
  let r2 = run () in
  (* The PRNG re-seeds at step 0, so reusing the scheduler value replays
     the same schedule instead of continuing the exhausted stream. *)
  Alcotest.(check int) "same number of steps" r1.Executor.steps r2.Executor.steps;
  Alcotest.(check bool) "same trace" true
    (Trace.events r1.Executor.trace = Trace.events r2.Executor.trace)

let test_fixed_stops_on_halted_pid () =
  let machine, specs = two_phase in
  (* p0 halts after 3 steps (write, read, decide); the schedule names it
     a 4th time: the run stops rather than skipping to another pid. *)
  let r =
    Executor.run ~machine ~specs ~inputs:inputs01
      ~scheduler:(Scheduler.fixed [ 0; 0; 0; 0; 1 ]) ()
  in
  Alcotest.(check bool) "scheduler stopped" true
    (r.Executor.stop = Executor.Scheduler_stopped);
  Alcotest.(check int) "3 steps taken" 3 r.Executor.steps;
  Alcotest.(check (option v)) "p0 decided solo"
    (Some Value.(pair (int 0, nil)))
    (Config.decision r.Executor.final 0);
  Alcotest.(check (option v)) "p1 never stepped to a decision" None
    (Config.decision r.Executor.final 1)

let test_prefix_stops_on_halted_pid () =
  let machine, specs = two_phase in
  (* Same halted-pid semantics as [fixed]: the prefix does not fall
     through to the continuation when its scheduled pid has halted. *)
  let r =
    Executor.run ~machine ~specs ~inputs:inputs01
      ~scheduler:(Scheduler.prefix [ 0; 0; 0; 0 ] (Scheduler.round_robin ~n:2))
      ()
  in
  Alcotest.(check bool) "scheduler stopped" true
    (r.Executor.stop = Executor.Scheduler_stopped);
  Alcotest.(check int) "3 steps taken" 3 r.Executor.steps;
  Alcotest.(check (option v)) "p1 untouched" None
    (Config.decision r.Executor.final 1)

let test_prng_int_uniform () =
  let prng = Prng.create 2026 in
  let bound = 10 and draws = 20_000 in
  let counts = Array.make bound 0 in
  for _ = 1 to draws do
    let x = Prng.int prng bound in
    if x < 0 || x >= bound then Alcotest.failf "draw %d out of [0,%d)" x bound;
    counts.(x) <- counts.(x) + 1
  done;
  (* Expected 2000 per bucket, sigma ~42: a +-200 corridor is ~4.7 sigma,
     so a pass is overwhelmingly likely for a uniform stream and a fail
     catches gross bias (e.g. the old modulo construction on a skewed
     bound). *)
  Array.iteri
    (fun x c ->
      if c < 1800 || c > 2200 then
        Alcotest.failf "bucket %d has %d draws (expected ~2000)" x c)
    counts

let test_prng_substream_golden () =
  (* Pinned SplitMix64 substream outputs: any change to the derivation
     breaks every recorded `--seed N` reproduction line, so it must be
     deliberate and show up here. *)
  let t = Prng.of_substream ~seed:42 ~index:0 in
  Alcotest.(check int64) "42/0 draw 1" 6332618229526065668L (Prng.next_int64 t);
  Alcotest.(check int64) "42/0 draw 2" (-816328817471504299L) (Prng.next_int64 t);
  Alcotest.(check int64) "42/0 draw 3" 8971565426155258802L (Prng.next_int64 t);
  let t = Prng.of_substream ~seed:42 ~index:1 in
  Alcotest.(check int64) "42/1 draw 1" (-245134149879684690L) (Prng.next_int64 t);
  let t = Prng.of_substream ~seed:7 ~index:100 in
  Alcotest.(check int64) "7/100 draw 1" (-3429997056032408803L) (Prng.next_int64 t)

let test_prng_substream_order_independent () =
  (* of_substream is a pure function of (seed, index): interleaving the
     creation of substreams, or drawing from one before creating
     another, must not perturb any stream — the property the fuzzer's
     multi-domain fan-out relies on for trial determinism. *)
  let sequential =
    List.map
      (fun i ->
        let t = Prng.of_substream ~seed:2026 ~index:i in
        List.init 5 (fun _ -> Prng.next_int64 t))
      [ 0; 1; 2; 3 ]
  in
  (* Reversed creation order, with extra draws between creations. *)
  let noise = Prng.create 99 in
  let interleaved =
    List.rev
      (List.map
         (fun i ->
           ignore (Prng.int noise 17);
           let t = Prng.of_substream ~seed:2026 ~index:i in
           ignore (Prng.int noise 3);
           List.init 5 (fun _ -> Prng.next_int64 t))
         [ 3; 2; 1; 0 ])
  in
  Alcotest.(check (list (list int64)))
    "streams independent of creation order" sequential interleaved;
  (* Distinct indices give distinct streams. *)
  Alcotest.(check bool) "substreams differ" true
    (List.nth sequential 0 <> List.nth sequential 1)

let test_prng_substream_negative_index () =
  match Prng.of_substream ~seed:1 ~index:(-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative index should be rejected"

(* Property companion to the halted-pid fixes above: a [starving]
   scheduler only ever returns a runnable pid — a crashed (non-runnable)
   process is never scheduled — and it yields its victim only when the
   victim is the sole runnable process.  Holds through the wrapper for
   any inner scheduler that picks from the runnable set it is handed,
   because [starving] filters the victim out before delegating. *)
let prop_starving_never_schedules_crashed =
  QCheck.Test.make ~count:1000
    ~name:"starving never schedules a crashed pid"
    QCheck.(triple (int_range 2 5) (int_range 0 31) small_nat)
    (fun (n, crash_mask, seed) ->
      let victim = seed mod n in
      let runnable =
        List.filter
          (fun pid -> crash_mask land (1 lsl pid) = 0)
          (List.init n Fun.id)
      in
      let lawful sched =
        let s = Scheduler.starving victim sched in
        List.for_all
          (fun step ->
            match s.Scheduler.next ~step ~runnable with
            | None -> true
            | Some pid ->
              List.mem pid runnable
              && (pid <> victim || runnable = [ victim ]))
          (List.init 20 Fun.id)
      in
      lawful (Scheduler.round_robin ~n) && lawful (Scheduler.random ~seed))

let () =
  Alcotest.run "runtime"
    [
      ( "executor",
        [
          Alcotest.test_case "round robin" `Quick
            test_round_robin_runs_to_completion;
          Alcotest.test_case "solo" `Quick test_solo_scheduler;
          Alcotest.test_case "fixed + trace" `Quick
            test_fixed_scheduler_and_trace;
          Alcotest.test_case "random reproducible" `Quick
            test_random_scheduler_deterministic_by_seed;
          Alcotest.test_case "starving" `Quick test_starving_scheduler;
          Alcotest.test_case "excluding" `Quick test_excluding_scheduler;
          Alcotest.test_case "run_solo continuation" `Quick
            test_run_solo_continuation;
          Alcotest.test_case "prefix scheduler" `Quick test_prefix_scheduler;
          Alcotest.test_case "random scheduler reusable" `Quick
            test_random_scheduler_reusable;
          Alcotest.test_case "fixed stops on halted pid" `Quick
            test_fixed_stops_on_halted_pid;
          Alcotest.test_case "prefix stops on halted pid" `Quick
            test_prefix_stops_on_halted_pid;
          Alcotest.test_case "step limit" `Quick test_step_limit;
          Alcotest.test_case "nondeterminism resolution" `Quick
            test_nondet_resolution;
          Alcotest.test_case "custom adversary strategy" `Quick
            test_strategy_nondet;
          QCheck_alcotest.to_alcotest prop_starving_never_schedules_crashed;
        ] );
      ( "fault",
        [
          Alcotest.test_case "plan application" `Quick test_fault_plan;
          Alcotest.test_case "plan enumeration sweep" `Quick
            test_fault_enumerate;
          Alcotest.test_case "random plan reproducible" `Quick
            test_fault_random_plan_reproducible;
          Alcotest.test_case "apply is reusable across runs" `Quick
            test_fault_apply_reusable;
          Alcotest.test_case "trace lanes rendering" `Quick test_trace_lanes;
        ] );
      ( "config",
        [
          Alcotest.test_case "crash" `Quick test_config_crash;
          Alcotest.test_case "compare" `Quick test_config_compare;
          Alcotest.test_case "bad state raises" `Quick
            test_machine_bad_state_raises;
          Alcotest.test_case "hash separates deep differences" `Quick
            test_config_hash_deep_differences;
        ] );
      ( "prng",
        [
          Alcotest.test_case "bounded draws uniform" `Quick
            test_prng_int_uniform;
          Alcotest.test_case "substream golden values" `Quick
            test_prng_substream_golden;
          Alcotest.test_case "substream draw-order independence" `Quick
            test_prng_substream_order_independent;
          Alcotest.test_case "substream negative index" `Quick
            test_prng_substream_negative_index;
        ] );
    ]
