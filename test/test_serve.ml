(* The verification service: canonical keys, the content-addressed
   store under fault injection, the daemon's cache layers (memory,
   persistent, cross-restart), single-flight coalescing under
   concurrent clients, fuzz-prefix resumption, and the CLI front-end.

   The battery's central property: for every query, the answer a client
   receives is byte-identical whether it was computed cold, served from
   the in-memory memo, served from the persistent store after a daemon
   restart, or reassembled from a resumed fuzz prefix. *)

open Lbsa

(* --- scratch plumbing --------------------------------------------------- *)

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let fresh_path suffix =
  let f = Filename.temp_file "lbsa-serve" suffix in
  Sys.remove f;
  f

let fresh_dir () =
  let d = fresh_path ".store" in
  Unix.mkdir d 0o755;
  d

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

(* Run [f] against a live in-process daemon; always drain it afterwards
   (even on test failure) so the domain can be joined.  Returns [f]'s
   result and the daemon's final counters. *)
let with_daemon ?(workers = 2) ?default_deadline_s ?(store_probe_s = 5.) ~dir f
    =
  let socket = fresh_path ".sock" in
  let d =
    Domain.spawn (fun () ->
        Serve_daemon.run
          {
            Serve_daemon.socket;
            store_dir = dir;
            workers;
            default_deadline_s;
            store_probe_s;
            log = false;
          })
  in
  (* wait until the daemon accepts before handing the socket to [f]:
     tests must never race the bind (a second in-process daemon started
     too early would win it and serve forever in this thread) *)
  (match Serve_client.connect ~wait_s:10. ~socket () with
  | Ok c -> Serve_client.close c
  | Error msg -> Alcotest.failf "daemon did not come up: %s" msg);
  let res =
    Fun.protect
      ~finally:(fun () ->
        match Serve_client.connect ~wait_s:10. ~socket () with
        | Ok c ->
          ignore (Serve_client.shutdown c);
          Serve_client.close c
        | Error _ -> ())
      (fun () -> f ~socket)
  in
  let stats = Domain.join d in
  (res, stats)

let connect ~socket =
  match Serve_client.connect ~wait_s:10. ~socket () with
  | Ok c -> c
  | Error msg -> Alcotest.failf "connect: %s" msg

let ask ?deadline_s c q =
  match Serve_client.query ?deadline_s c q with
  | Ok (r, cached, _wall) -> (r, cached)
  | Error msg -> Alcotest.failf "query %s: %s" (Serve_api.canonical q) msg

(* --- canonical keys ----------------------------------------------------- *)

let max_states = 200_000

let verify ?(question = Serve_api.Solve) ?(reduce = `None) ?substrate ?inputs
    task =
  let inputs =
    match inputs with Some l -> l | None -> Serve_api.default_inputs task
  in
  let substrate =
    match substrate with
    | Some s -> s
    | None -> Serve_api.default_substrate task
  in
  Serve_api.Verify { task; question; inputs; max_states; reduce; substrate }

(* The golden pin: the canonical preimage format and its digest are the
   persistent store's on-disk address space — drift invalidates (or
   worse, silently re-addresses) every existing store.  Bump the
   lbsa-query/N version tag deliberately, never accidentally. *)
let test_canonical_golden () =
  let q = verify ~reduce:`Sym (Serve_api.Dac { n = 3 }) in
  Alcotest.(check string)
    "canonical preimage"
    "lbsa-query/2 verify task=dac:3 question=solve inputs=1,0,0 \
     max_states=200000 reduce=sym substrate=shm"
    (Serve_api.canonical q);
  Alcotest.(check string) "digest" "1aee6902e752d54b" (Serve_api.key q)

(* Regression for the fingerprint defect this PR fixes: every
   key-determining parameter must separate the canonical preimage.  The
   original `lbsa fingerprint` ignored the reduction mode, the input
   vector and the state quota, so e.g. sym and sym+sleep runs of the
   same task shared a fingerprint — in a cache, one mode's answer would
   be served for the other. *)
let test_key_separation () =
  let dac = Serve_api.Dac { n = 3 } in
  let base = verify dac in
  let distinct label a b =
    if Serve_api.canonical a = Serve_api.canonical b then
      Alcotest.failf "%s: canonicals collide (%s)" label
        (Serve_api.canonical a);
    if Serve_api.key a = Serve_api.key b then
      Alcotest.failf "%s: keys collide" label
  in
  distinct "reduce none/sym" base (verify ~reduce:`Sym dac);
  distinct "reduce sym/sym+sleep" (verify ~reduce:`Sym dac)
    (verify ~reduce:`Sym_sleep dac);
  distinct "reduce none/sym+sleep" base (verify ~reduce:`Sym_sleep dac);
  distinct "inputs" base (verify ~inputs:[ 0; 0; 0 ] dac);
  distinct "question" base (verify ~question:Serve_api.Valence dac);
  distinct "max_states" base
    (Serve_api.Verify
       {
         task = dac;
         question = Serve_api.Solve;
         inputs = Serve_api.default_inputs dac;
         max_states = max_states + 1;
         reduce = `None;
         substrate = "shm";
       });
  distinct "task" base (verify (Serve_api.Consensus { m = 2 }));
  (* the /2 additions: substrate and the liveness question are
     graph-changing, so they must separate keys too *)
  let vc = Serve_api.Vc { n = 2 } in
  distinct "substrate shm/mp" (verify ~substrate:"shm" vc)
    (verify ~substrate:"mp" vc);
  distinct "substrate mp/mp+byz"
    (verify ~substrate:"mp" vc)
    (verify ~substrate:"mp+byz:1" vc);
  distinct "question solve/live" (verify vc)
    (verify ~question:Serve_api.Live vc);
  distinct "task vc/bcast" (verify vc) (verify (Serve_api.Bcast { n = 2 }));
  distinct "verify/fuzz"
    base
    (Serve_api.Fuzz { target = "queue"; trials = 1; procs = 2; ops = 2; seed = 1 })

(* --- the store under fault injection ------------------------------------ *)

(* [Store.put] reports device-level failures as [Error]; these tests run
   against a healthy filesystem, so any [Error] is itself a failure. *)
let put_ok s ~key ~canonical ~data =
  match Serve_store.put s ~key ~canonical ~data with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "Store.put failed: %s" msg

let test_store_roundtrip () =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let s = Serve_store.open_ ~dir in
      put_ok s ~key:"abcd" ~canonical:"question one" ~data:"answer";
      Alcotest.(check (option string))
        "roundtrip" (Some "answer")
        (Serve_store.get s ~key:"abcd" ~canonical:"question one");
      Alcotest.(check (list string)) "listed" [ "abcd" ] (Serve_store.entries s);
      (* overwrite is atomic and replaces *)
      put_ok s ~key:"abcd" ~canonical:"question one" ~data:"answer2";
      Alcotest.(check (option string))
        "overwrite" (Some "answer2")
        (Serve_store.get s ~key:"abcd" ~canonical:"question one");
      Alcotest.(check int) "no corruption seen" 0 (Serve_store.corrupt_count s))

(* Apply [mutate] to the entry file and check the store detects it,
   deletes the entry, and a rewrite then works again. *)
let check_detects label mutate =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let s = Serve_store.open_ ~dir in
      let key = "deadbeef00000001" and canonical = "some question" in
      put_ok s ~key ~canonical ~data:"the answer";
      mutate (Serve_store.path s ~key);
      Alcotest.(check (option string))
        (label ^ ": detected as a miss") None
        (Serve_store.get s ~key ~canonical);
      Alcotest.(check int) (label ^ ": counted") 1 (Serve_store.corrupt_count s);
      Alcotest.(check bool)
        (label ^ ": evicted") false
        (Sys.file_exists (Serve_store.path s ~key));
      (* the recompute-and-rewrite path restores service *)
      put_ok s ~key ~canonical ~data:"the answer";
      Alcotest.(check (option string))
        (label ^ ": rewrite serves") (Some "the answer")
        (Serve_store.get s ~key ~canonical))

let read_file f =
  let ic = open_in_bin f in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file f s =
  let oc = open_out_bin f in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let test_store_truncation () =
  check_detects "truncated" (fun file ->
      let s = read_file file in
      write_file file (String.sub s 0 (String.length s - 3)))

let test_store_payload_flip () =
  check_detects "payload byte flip" (fun file ->
      let s = Bytes.of_string (read_file file) in
      let i = Bytes.length s - 2 in
      Bytes.set s i (Char.chr (Char.code (Bytes.get s i) lxor 0x40));
      write_file file (Bytes.to_string s))

let test_store_checksum_flip () =
  check_detects "checksum byte flip" (fun file ->
      let s = Bytes.of_string (read_file file) in
      (* the checksum line sits right after the magic; flip a hex digit
         to another valid hex digit *)
      let i = String.length "LBSA-STORE/1\n" in
      Bytes.set s i (if Bytes.get s i = '0' then '1' else '0');
      write_file file (Bytes.to_string s))

let test_store_garbage () =
  check_detects "garbage file" (fun file -> write_file file "not a store entry")

let test_store_empty_file () =
  check_detects "empty file" (fun file -> write_file file "")

(* A digest collision (or a hand-renamed entry): the file is internally
   pristine — magic and checksum verify — but it answers a different
   canonical question.  The preimage check must refuse it; routing by
   digest alone would serve query A's answer to query B. *)
let test_store_collision_refused () =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let s = Serve_store.open_ ~dir in
      put_ok s ~key:"aaaa" ~canonical:"question A" ~data:"answer A";
      (* simulate key "bbbb" hashing to the same file contents as "aaaa" *)
      write_file (Serve_store.path s ~key:"bbbb")
        (read_file (Serve_store.path s ~key:"aaaa"));
      Alcotest.(check (option string))
        "collision refused" None
        (Serve_store.get s ~key:"bbbb" ~canonical:"question B");
      Alcotest.(check int) "counted as corrupt" 1 (Serve_store.corrupt_count s);
      Alcotest.(check (option string))
        "original untouched" (Some "answer A")
        (Serve_store.get s ~key:"aaaa" ~canonical:"question A"))

(* The payload guard: a body over [max_payload] is refused outright —
   no file, no corruption count, just an oversized count — and the key
   stays serviceable for normally-sized rewrites. *)
let test_store_oversized_refused () =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let s = Serve_store.open_ ~dir in
      let key = "feedface00000001" and canonical = "a big question" in
      put_ok s ~key ~canonical
        ~data:(String.make (Serve_store.max_payload + 1) 'x');
      Alcotest.(check bool)
        "nothing written" false
        (Sys.file_exists (Serve_store.path s ~key));
      Alcotest.(check (option string))
        "reported as a miss" None
        (Serve_store.get s ~key ~canonical);
      Alcotest.(check int) "counted oversized" 1 (Serve_store.oversized_count s);
      Alcotest.(check int)
        "not counted corrupt" 0 (Serve_store.corrupt_count s);
      (* the same key still takes a sane entry afterwards *)
      put_ok s ~key ~canonical ~data:"a small answer";
      Alcotest.(check (option string))
        "small rewrite serves" (Some "a small answer")
        (Serve_store.get s ~key ~canonical))

(* The other half of the guard, end to end: a quota-truncated explore
   answers with a fixed-size verdict+stats summary, never the graph.
   However many states the exploration visited, what crosses the wire
   and what lands in the store stays a few hundred bytes — far under
   both the 16 MB frame cap and the store's [max_payload] — so a
   >=10^7-state answer can never die as a frame error on a cache hit. *)
let test_truncated_explore_roundtrips_as_summary () =
  let task = Serve_api.Dac { n = 3 } in
  let q =
    Serve_api.Verify
      {
        task;
        question = Serve_api.Solve;
        inputs = Serve_api.default_inputs task;
        max_states = 40;  (* dac:3 has 190 reachable states: quota fires *)
        reduce = `None;
        substrate = "shm";
      }
  in
  let computed = Serve_api.compute q in
  (match computed.Serve_api.res with
  | Serve_api.Verdict v ->
    Alcotest.(check string) "quota fired" "truncated" v.Serve_api.v_outcome
  | _ -> Alcotest.fail "solve answered with a non-verdict result");
  Alcotest.(check bool)
    "truncated answers are cacheable (max_states is in the key)" true
    computed.Serve_api.cacheable;
  Alcotest.(check bool)
    "the marshalled answer is a summary, not a graph" true
    (String.length (Marshal.to_string computed.Serve_api.res []) < 4096);
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let (), _ =
        with_daemon ~dir (fun ~socket ->
            let c = connect ~socket in
            Fun.protect
              ~finally:(fun () -> Serve_client.close c)
              (fun () ->
                let r1, cached1 = ask c q in
                Alcotest.(check bool) "cold is computed" false cached1;
                let r2, cached2 = ask c q in
                Alcotest.(check bool) "truncated answer cached" true cached2;
                Alcotest.(check string)
                  "warm = cold" (Serve_api.render r1) (Serve_api.render r2)))
      in
      let s = Serve_store.open_ ~dir in
      let key = Serve_api.key q in
      let file = Serve_store.path s ~key in
      Alcotest.(check bool) "entry persisted" true (Sys.file_exists file);
      Alcotest.(check bool)
        "persisted entry is summary-sized" true
        ((Unix.stat file).Unix.st_size < 4096))

(* --- cache-identity property over the task registry --------------------- *)

let matrix_tasks =
  [
    Serve_api.Dac { n = 3 };
    Serve_api.Consensus { m = 2 };
    Serve_api.Kset { m = 2; k = 2 };
    (* a failing candidate: FAIL answers must cache byte-identically too *)
    Serve_api.Candidate { name = "flp-write-read" };
  ]

let matrix =
  List.concat_map
    (fun task ->
      List.concat_map
        (fun reduce ->
          [
            verify ~question:Serve_api.Solve ~reduce task;
            verify ~question:Serve_api.Valence ~reduce task;
          ])
        [ `None; `Sym; `Sym_sleep ])
    matrix_tasks

(* Every registry protocol/task pair x every --reduce mode x both
   questions: the cold in-process answer, the daemon's computed answer,
   the warm in-memory answer, and the cross-restart store answer must
   render byte-identically. *)
let test_cache_identity_matrix () =
  let reference =
    List.map (fun q -> (q, Serve_api.render (Serve_api.compute q).res)) matrix
  in
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let (), stats1 =
        with_daemon ~dir (fun ~socket ->
            let c = connect ~socket in
            Fun.protect
              ~finally:(fun () -> Serve_client.close c)
              (fun () ->
                List.iter
                  (fun (q, want) ->
                    let r_cold, cached_cold = ask c q in
                    Alcotest.(check bool)
                      ("cold is computed: " ^ Serve_api.canonical q)
                      false cached_cold;
                    Alcotest.(check string)
                      ("cold = reference: " ^ Serve_api.canonical q)
                      want (Serve_api.render r_cold);
                    let r_warm, cached_warm = ask c q in
                    Alcotest.(check bool)
                      ("warm is cached: " ^ Serve_api.canonical q)
                      true cached_warm;
                    Alcotest.(check string)
                      ("warm = reference: " ^ Serve_api.canonical q)
                      want (Serve_api.render r_warm))
                  reference))
      in
      let n = List.length reference in
      Alcotest.(check int) "one computation per key" n stats1.Serve_wire.st_computed;
      Alcotest.(check int) "one memo hit per key" n stats1.Serve_wire.st_hits_mem;
      (* restart on the same store: every answer must come back from
         disk, byte-identical, with zero computations *)
      let (), stats2 =
        with_daemon ~dir (fun ~socket ->
            let c = connect ~socket in
            Fun.protect
              ~finally:(fun () -> Serve_client.close c)
              (fun () ->
                List.iter
                  (fun (q, want) ->
                    let r, cached = ask c q in
                    Alcotest.(check bool)
                      ("restart hit: " ^ Serve_api.canonical q)
                      true cached;
                    Alcotest.(check string)
                      ("restart = reference: " ^ Serve_api.canonical q)
                      want (Serve_api.render r))
                  reference))
      in
      Alcotest.(check int)
        "restart: no recomputation" 0 stats2.Serve_wire.st_computed;
      Alcotest.(check int)
        "restart: all answers from the store" n stats2.Serve_wire.st_hits_store;
      Alcotest.(check int)
        "restart: store pristine" 0 stats2.Serve_wire.st_corrupt)

(* Liveness answers cache like safety answers: cold, warm and
   cross-restart renders byte-identical — including the livelock case,
   whose render carries the fair-SCC counts and shrunk-lasso shape. *)
let test_live_cache_identity () =
  let qs =
    [
      verify ~question:Serve_api.Live (Serve_api.Vc { n = 2 });
      verify ~question:Serve_api.Live (Serve_api.Bcast { n = 2 });
    ]
  in
  let reference =
    List.map (fun q -> (q, Serve_api.render (Serve_api.compute q).res)) qs
  in
  (match reference with
  | (_, vc_render) :: (_, bcast_render) :: _ ->
    Alcotest.(check bool)
      "vc:2 is a livelock" true
      (contains_sub ~sub:"LIVELOCK" vc_render);
    Alcotest.(check bool)
      "bcast:2 is live" true
      (contains_sub ~sub:"LIVE" bcast_render
      && not (contains_sub ~sub:"LIVELOCK" bcast_render))
  | _ -> Alcotest.fail "reference renders missing");
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let (), _ =
        with_daemon ~dir (fun ~socket ->
            let c = connect ~socket in
            Fun.protect
              ~finally:(fun () -> Serve_client.close c)
              (fun () ->
                List.iter
                  (fun (q, want) ->
                    let r1, cached1 = ask c q in
                    Alcotest.(check bool)
                      ("cold is computed: " ^ Serve_api.canonical q)
                      false cached1;
                    Alcotest.(check string)
                      ("cold = reference: " ^ Serve_api.canonical q)
                      want (Serve_api.render r1);
                    let r2, cached2 = ask c q in
                    Alcotest.(check bool)
                      ("warm is cached: " ^ Serve_api.canonical q)
                      true cached2;
                    Alcotest.(check string)
                      ("warm = reference: " ^ Serve_api.canonical q)
                      want (Serve_api.render r2))
                  reference))
      in
      let (), stats2 =
        with_daemon ~dir (fun ~socket ->
            let c = connect ~socket in
            Fun.protect
              ~finally:(fun () -> Serve_client.close c)
              (fun () ->
                List.iter
                  (fun (q, want) ->
                    let r, cached = ask c q in
                    Alcotest.(check bool)
                      ("restart hit: " ^ Serve_api.canonical q)
                      true cached;
                    Alcotest.(check string)
                      ("restart = reference: " ^ Serve_api.canonical q)
                      want (Serve_api.render r))
                  reference))
      in
      Alcotest.(check int)
        "restart: no recomputation" 0 stats2.Serve_wire.st_computed)

(* Corrupt the store between restarts: the daemon must detect, log,
   recompute, answer identically, and heal the entry on disk. *)
let test_daemon_recovers_from_corrupt_store () =
  let q = verify ~reduce:`Sym (Serve_api.Dac { n = 3 }) in
  let key = Serve_api.key q in
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let want, _ =
        with_daemon ~dir (fun ~socket ->
            let c = connect ~socket in
            Fun.protect
              ~finally:(fun () -> Serve_client.close c)
              (fun () -> Serve_api.render (fst (ask c q))))
      in
      (* flip a payload byte in the persisted entry *)
      let s = Serve_store.open_ ~dir in
      let file = Serve_store.path s ~key in
      Alcotest.(check bool) "entry persisted" true (Sys.file_exists file);
      let b = Bytes.of_string (read_file file) in
      let i = Bytes.length b - 1 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
      write_file file (Bytes.to_string b);
      let (render2, cached2), stats =
        with_daemon ~dir (fun ~socket ->
            let c = connect ~socket in
            Fun.protect
              ~finally:(fun () -> Serve_client.close c)
              (fun () ->
                let r, cached = ask c q in
                (Serve_api.render r, cached)))
      in
      Alcotest.(check bool) "recomputed, not served corrupt" false cached2;
      Alcotest.(check string) "identical answer after recompute" want render2;
      Alcotest.(check int) "corruption counted" 1 stats.Serve_wire.st_corrupt;
      (* the rewrite healed the entry: a third daemon serves from disk *)
      let cached3, _ =
        with_daemon ~dir (fun ~socket ->
            let c = connect ~socket in
            Fun.protect
              ~finally:(fun () -> Serve_client.close c)
              (fun () -> snd (ask c q)))
      in
      Alcotest.(check bool) "healed entry serves" true cached3)

(* --- concurrent clients and single-flight -------------------------------- *)

(* N clients fire interleaved duplicate and distinct queries at one
   daemon.  Deterministic guarantees, independent of scheduling: every
   client sees the same answer for the same query; each distinct key is
   computed exactly once (a duplicate either joins the in-flight job or
   hits a cache — never re-runs); and shutdown drains cleanly with all
   clients answered. *)
let test_concurrent_single_flight () =
  let distinct =
    [
      verify (Serve_api.Dac { n = 3 });
      verify ~reduce:`Sym (Serve_api.Dac { n = 3 });
      verify (Serve_api.Consensus { m = 2 });
      verify ~question:Serve_api.Valence (Serve_api.Kset { m = 2; k = 2 });
    ]
  in
  (* every client asks the first query 3 extra times, interleaved *)
  let per_client = (List.hd distinct :: distinct) @ [ List.hd distinct; List.hd distinct ] in
  let n_clients = 6 in
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let answers, stats =
        with_daemon ~dir (fun ~socket ->
            let clients =
              List.init n_clients (fun _ ->
                  Domain.spawn (fun () ->
                      let c = connect ~socket in
                      Fun.protect
                        ~finally:(fun () -> Serve_client.close c)
                        (fun () ->
                          List.map
                            (fun q ->
                              (Serve_api.canonical q,
                               Serve_api.render (fst (ask c q))))
                            per_client)))
            in
            List.concat_map Domain.join clients)
      in
      (* determinism: one render per canonical across all clients *)
      let tbl = Hashtbl.create 8 in
      List.iter
        (fun (canonical, render) ->
          match Hashtbl.find_opt tbl canonical with
          | None -> Hashtbl.add tbl canonical render
          | Some prior ->
            Alcotest.(check string)
              ("deterministic across clients: " ^ canonical)
              prior render)
        answers;
      Alcotest.(check int)
        "every distinct key answered"
        (List.length distinct) (Hashtbl.length tbl);
      let total = n_clients * List.length per_client in
      let d = List.length distinct in
      Alcotest.(check int) "all queries answered" total
        (List.length answers);
      Alcotest.(check int) "queries counted" total stats.Serve_wire.st_queries;
      Alcotest.(check int)
        "single-flight: one computation per distinct key" d
        stats.Serve_wire.st_computed;
      Alcotest.(check int)
        "one miss per distinct key" d stats.Serve_wire.st_misses;
      Alcotest.(check int)
        "every duplicate joined or hit a cache" (total - d)
        (stats.Serve_wire.st_joined + stats.Serve_wire.st_hits_mem
        + stats.Serve_wire.st_hits_store))

(* --- fuzz campaigns: caching and prefix resumption ----------------------- *)

let fuzz_q ~trials =
  Serve_api.Fuzz { target = "queue"; trials; procs = 3; ops = 3; seed = 42 }

let test_fuzz_caches_clean_run () =
  let q = fuzz_q ~trials:40 in
  let want = Serve_api.render (Serve_api.compute q).res in
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let (), _ =
        with_daemon ~dir (fun ~socket ->
            let c = connect ~socket in
            Fun.protect
              ~finally:(fun () -> Serve_client.close c)
              (fun () ->
                let r1, cached1 = ask c q in
                Alcotest.(check bool) "cold" false cached1;
                Alcotest.(check string) "cold render" want (Serve_api.render r1);
                let r2, cached2 = ask c q in
                Alcotest.(check bool) "warm" true cached2;
                Alcotest.(check string) "warm render" want (Serve_api.render r2)))
      in
      ())

(* A deadline-cut campaign persists its completed-trial prefix; the
   identical re-query resumes from it and the final answer is
   byte-identical to an uninterrupted run's.  Timing-tolerant: if the
   box is fast enough that the capped run completes anyway, the test
   degrades to the plain cache-identity check. *)
let test_fuzz_prefix_resume () =
  let q = fuzz_q ~trials:4_000 in
  let want = Serve_api.render (Serve_api.compute q).res in
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let (), stats =
        with_daemon ~dir (fun ~socket ->
            let c = connect ~socket in
            Fun.protect
              ~finally:(fun () -> Serve_client.close c)
              (fun () ->
                let r1, _ = ask ~deadline_s:0.05 c q in
                (match r1 with
                | Serve_api.Fuzz_report f ->
                  if f.Serve_api.f_partial then
                    Alcotest.(check bool)
                      "partial run completed a proper prefix" true
                      (f.Serve_api.f_completed < 4_000)
                | _ -> Alcotest.fail "fuzz query answered with a non-fuzz result");
                let r2, _ = ask c q in
                Alcotest.(check string)
                  "resumed final answer = uninterrupted answer" want
                  (Serve_api.render r2);
                let r3, cached3 = ask c q in
                Alcotest.(check bool) "final answer cached" true cached3;
                Alcotest.(check string)
                  "cached = reference" want (Serve_api.render r3)))
      in
      if stats.Serve_wire.st_prefix_stored > 0 then
        Alcotest.(check bool)
          "stored prefix was resumed" true
          (stats.Serve_wire.st_prefix_resumed > 0))

(* --- wire-level behaviour ------------------------------------------------ *)

let test_ping_stats_and_bad_query () =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let (), _ =
        with_daemon ~dir (fun ~socket ->
            let c = connect ~socket in
            Fun.protect
              ~finally:(fun () -> Serve_client.close c)
              (fun () ->
                (match Serve_client.ping c with
                | Ok () -> ()
                | Error msg -> Alcotest.failf "ping: %s" msg);
                (* malformed queries come back as errors, not crashes *)
                (match
                   Serve_client.query c
                     (Serve_api.Verify
                        {
                          task = Serve_api.Candidate { name = "no-such" };
                          question = Serve_api.Solve;
                          inputs = [ 0; 1 ];
                          max_states;
                          reduce = `None;
                          substrate = "shm";
                        })
                 with
                | Error msg ->
                  Alcotest.(check bool)
                    "names the unknown candidate" true
                    (contains_sub ~sub:"no-such" msg)
                | Ok _ -> Alcotest.fail "unknown candidate accepted");
                (match
                   Serve_client.query c
                     (verify ~inputs:[ 1 ] (Serve_api.Dac { n = 3 }))
                 with
                | Error _ -> ()
                | Ok _ -> Alcotest.fail "wrong input arity accepted");
                match Serve_client.stats c with
                | Ok s ->
                  Alcotest.(check int)
                    "bad queries counted but not computed" 0
                    s.Serve_wire.st_computed
                | Error msg -> Alcotest.failf "stats: %s" msg))
      in
      ())

(* second daemon on the same socket must refuse to start *)
let test_socket_exclusion () =
  let dir = fresh_dir () in
  let dir2 = fresh_dir () in
  Fun.protect
    ~finally:(fun () ->
      rm_rf dir;
      rm_rf dir2)
    (fun () ->
      let (), _ =
        with_daemon ~dir (fun ~socket ->
            match
              Serve_daemon.run
                {
                  Serve_daemon.socket;
                  store_dir = dir2;
                  workers = 1;
                  default_deadline_s = None;
                  store_probe_s = 5.;
                  log = false;
                }
            with
            | exception Failure msg ->
              Alcotest.(check bool)
                "names the socket" true
                (contains_sub ~sub:"already" msg)
            | _ -> Alcotest.fail "second daemon bound the same socket")
      in
      ())

(* --- the CLI front-end --------------------------------------------------- *)

let exe =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat ".." (Filename.concat "bin" "lbsa_cli.exe"))

let run fmt = Fmt.kstr Sys.command fmt

let test_cli_round_trip () =
  if not (Sys.file_exists exe) then
    Alcotest.fail (Fmt.str "CLI executable not found at %s" exe);
  let q = Filename.quote in
  let socket = fresh_path ".sock" in
  let dir = fresh_dir () in
  let out1 = fresh_path ".out" and out2 = fresh_path ".out" in
  let started = ref false in
  Fun.protect
    ~finally:(fun () ->
      if !started then
        ignore
          (run "%s shutdown --socket %s --wait 2 >/dev/null 2>&1" (q exe)
             (q socket));
      List.iter (fun f -> if Sys.file_exists f then Sys.remove f) [ out1; out2 ];
      rm_rf dir)
    (fun () ->
      Alcotest.(check int) "daemon starts in the background" 0
        (run "%s serve --socket %s --store %s --quiet >/dev/null 2>&1 &"
           (q exe) (q socket) (q dir));
      started := true;
      Alcotest.(check int) "cold query succeeds" 0
        (run "%s query dac:3 --socket %s --wait 10 > %s 2>/dev/null" (q exe)
           (q socket) (q out1));
      Alcotest.(check int) "hot query succeeds" 0
        (run "%s query dac:3 --socket %s > %s 2>/dev/null" (q exe) (q socket)
           (q out2));
      Alcotest.(check int) "cold and hot stdout byte-identical" 0
        (run "cmp -s %s %s" (q out1) (q out2));
      (* a failing candidate propagates the CLI-wide exit-code policy *)
      Alcotest.(check int) "failing candidate exits 1" 1
        (Sys.command
           (Fmt.str "%s query cand:flp-write-read --socket %s >/dev/null 2>&1"
              (q exe) (q socket)));
      Alcotest.(check int) "clean drain" 0
        (run "%s shutdown --socket %s >/dev/null 2>&1" (q exe) (q socket));
      started := false;
      Alcotest.(check int) "query after shutdown cannot connect" 3
        (Sys.command
           (Fmt.str "%s query dac:3 --socket %s >/dev/null 2>&1" (q exe)
              (q socket))))

(* The repaired fingerprint: cross-process stable under intern-id
   shifts, and every key-determining parameter separates both the
   structural fingerprint and the printed cache key. *)
let test_cli_fingerprint_pins_parameters () =
  if not (Sys.file_exists exe) then
    Alcotest.fail (Fmt.str "CLI executable not found at %s" exe);
  let q = Filename.quote in
  let capture args =
    let f = fresh_path ".fp" in
    Fun.protect
      ~finally:(fun () -> if Sys.file_exists f then Sys.remove f)
      (fun () ->
        Alcotest.(check int)
          ("fingerprint " ^ args) 0
          (run "%s fingerprint %s > %s 2>/dev/null" (q exe) args (q f));
        String.trim (read_file f))
  in
  let base = capture "-n 3" in
  let warmed = capture "-n 3 --intern-warmup 2000" in
  Alcotest.(check string) "intern-id shift changes nothing" base warmed;
  let sym = capture "-n 3 --reduce sym" in
  let sleep = capture "-n 3 --reduce sym+sleep" in
  let other_inputs = capture "-n 3 --inputs 0,0,0" in
  let distinct label a b =
    if a = b then Alcotest.failf "%s: fingerprints collide: %s" label a
  in
  distinct "none vs sym" base sym;
  distinct "sym vs sym+sleep" sym sleep;
  distinct "default vs 0,0,0 inputs" base other_inputs;
  (* the printed key= agrees with the in-process canonical digest:
     cross-process golden for the cache address *)
  let expect_key =
    Serve_api.key
      (Serve_api.Verify
         {
           task = Serve_api.Dac { n = 3 };
           question = Serve_api.Solve;
           inputs = [ 1; 0; 0 ];
           max_states = Lbsa_modelcheck.Graph.default_max_states;
           reduce = `Sym;
           substrate = "shm";
         })
  in
  Alcotest.(check bool)
    "key= field matches the in-process digest" true
    (contains_sub ~sub:("key=" ^ expect_key) sym)

(* --- suite --------------------------------------------------------------- *)

let () =
  Alcotest.run "serve"
    [
      ( "keys",
        [
          Alcotest.test_case "canonical golden pin" `Quick test_canonical_golden;
          Alcotest.test_case "parameters separate keys" `Quick
            test_key_separation;
        ] );
      ( "store",
        [
          Alcotest.test_case "roundtrip" `Quick test_store_roundtrip;
          Alcotest.test_case "truncation detected" `Quick test_store_truncation;
          Alcotest.test_case "payload flip detected" `Quick
            test_store_payload_flip;
          Alcotest.test_case "checksum flip detected" `Quick
            test_store_checksum_flip;
          Alcotest.test_case "garbage refused" `Quick test_store_garbage;
          Alcotest.test_case "empty file refused" `Quick test_store_empty_file;
          Alcotest.test_case "digest collision refused" `Quick
            test_store_collision_refused;
          Alcotest.test_case "oversized payload refused" `Quick
            test_store_oversized_refused;
          Alcotest.test_case "truncated explore round-trips as a summary"
            `Quick test_truncated_explore_roundtrips_as_summary;
        ] );
      ( "cache identity",
        [
          Alcotest.test_case "registry x reduce x question matrix" `Slow
            test_cache_identity_matrix;
          Alcotest.test_case "liveness answers cache byte-identically" `Quick
            test_live_cache_identity;
          Alcotest.test_case "daemon recovers from corrupt store" `Quick
            test_daemon_recovers_from_corrupt_store;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "single-flight under concurrent clients" `Slow
            test_concurrent_single_flight;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "clean campaign cached" `Quick
            test_fuzz_caches_clean_run;
          Alcotest.test_case "prefix resumption" `Slow test_fuzz_prefix_resume;
        ] );
      ( "wire",
        [
          Alcotest.test_case "ping, stats, malformed queries" `Quick
            test_ping_stats_and_bad_query;
          Alcotest.test_case "socket exclusion" `Quick test_socket_exclusion;
        ] );
      ( "cli",
        [
          Alcotest.test_case "serve/query/shutdown round trip" `Slow
            test_cli_round_trip;
          Alcotest.test_case "fingerprint pins its parameters" `Slow
            test_cli_fingerprint_pins_parameters;
        ] );
    ]
