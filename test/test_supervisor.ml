(* The supervision layer: structured partial outcomes where truncation
   used to raise, worker fault isolation across the pipeline,
   deterministic chaos injection, and checkpoint/resume equivalence. *)

open Lbsa

let expired () = Supervisor.Budget.make ~deadline_s:0. ()

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let expect_outcome label want got =
  if got <> want then
    Alcotest.failf "%s: expected %a, got %a" label Supervisor.pp_outcome want
      Supervisor.pp_outcome got

let same_graph label (g1 : Cgraph.t) (g2 : Cgraph.t) =
  Alcotest.(check int)
    (label ^ ": node count") (Cgraph.n_nodes g1) (Cgraph.n_nodes g2);
  Alcotest.(check int)
    (label ^ ": edge count") (Cgraph.n_edges g1) (Cgraph.n_edges g2);
  for id = 0 to Cgraph.n_nodes g1 - 1 do
    if not (Config.equal (Cgraph.node g1 id) (Cgraph.node g2 id)) then
      Alcotest.failf "%s: node %d differs" label id;
    if Cgraph.out_edges g1 id <> Cgraph.out_edges g2 id then
      Alcotest.failf "%s: out-edges of node %d differ" label id
  done

let dac_instance n =
  ( Dac_from_pac.machine ~n,
    Dac_from_pac.specs ~n,
    Array.init n (fun pid -> Value.int (if pid = 0 then 1 else 0)) )

(* --- structured outcomes (the old raise-through Truncated path) -------- *)

let test_truncation_is_partial_verdict () =
  let machine, specs = Consensus_protocols.from_consensus_obj ~m:2 in
  let inputs = [| Value.int 0; Value.int 1 |] in
  let v =
    Solvability.check_consensus ~max_states:1 ~machine ~specs ~inputs ()
  in
  Alcotest.(check bool) "partial is not ok" false v.Solvability.ok;
  expect_outcome "quota" Supervisor.Truncated v.Solvability.outcome;
  Alcotest.(check bool)
    "suspension captured" true
    (v.Solvability.suspended <> None)

let test_deadline_is_partial_verdict () =
  let machine, specs = Consensus_protocols.from_consensus_obj ~m:2 in
  let inputs = [| Value.int 0; Value.int 1 |] in
  let v =
    Solvability.check_consensus ~budget:(expired ()) ~machine ~specs ~inputs
      ()
  in
  Alcotest.(check bool) "partial is not ok" false v.Solvability.ok;
  expect_outcome "deadline" Supervisor.Deadline v.Solvability.outcome;
  Alcotest.(check bool)
    "suspension captured" true
    (v.Solvability.suspended <> None)

let test_cancellation_is_partial_verdict () =
  let machine, specs = Consensus_protocols.from_consensus_obj ~m:2 in
  let inputs = [| Value.int 0; Value.int 1 |] in
  let token = Supervisor.token () in
  Supervisor.cancel token;
  let budget = Supervisor.Budget.make ~deadline_s:3600. ~token () in
  let v =
    Solvability.check_consensus ~budget ~machine ~specs ~inputs ()
  in
  (* Cancellation wins over a live deadline. *)
  expect_outcome "cancelled" Supervisor.Cancelled v.Solvability.outcome

let test_sigint_routes_to_token () =
  (* The CLI's ^C path, minus the terminal: install the handler, send
     ourselves a real SIGINT, and watch it land in the token.  (The
     interrupt/resume CLI test below uses --deadline 0 instead — every
     run here is far too fast to signal from outside without racing —
     and cancellation and deadline share the same stop path.) *)
  let token = Supervisor.token () in
  Supervisor.install_sigint token;
  Fun.protect
    ~finally:(fun () -> Sys.set_signal Sys.sigint Sys.Signal_default)
    (fun () ->
      Unix.kill (Unix.getpid ()) Sys.sigint;
      (* OCaml delivers signals at poll points; spin on one until then. *)
      let give_up = Unix.gettimeofday () +. 5. in
      while
        (not (Supervisor.cancelled token))
        && Unix.gettimeofday () < give_up
      do
        ignore (Sys.opaque_identity (ref 0))
      done;
      Alcotest.(check bool) "SIGINT cancels the token" true
        (Supervisor.cancelled token);
      let budget = Supervisor.Budget.make ~token () in
      match Supervisor.Budget.stop budget with
      | Some Supervisor.Cancelled -> ()
      | Some o ->
        Alcotest.failf "expected Cancelled, got %a" Supervisor.pp_outcome o
      | None -> Alcotest.fail "budget ignored the cancelled token")

(* --- worker fault isolation -------------------------------------------- *)

let test_graph_isolates_raising_machine () =
  let machine =
    Machine.make ~name:"raiser"
      ~init:(fun ~pid:_ ~input -> input)
      ~delta:(fun ~pid:_ _ -> failwith "injected machine fault")
  in
  let g =
    Cgraph.build ~machine ~specs:[||] ~inputs:[| Value.int 0 |] ()
  in
  (match g.Cgraph.stop with
  | Supervisor.Worker_failed { worker = 0; _ } -> ()
  | o ->
    Alcotest.failf "expected a worker failure, got %a" Supervisor.pp_outcome o);
  Alcotest.(check bool) "marked truncated" true g.Cgraph.truncated;
  Alcotest.(check int) "the explored prefix survives" 1 (Cgraph.n_nodes g)

let test_sweep_survives_raising_checker () =
  (* Regression for the latent for_all_inputs bug: an exception escaping
     a spawned domain used to abort the whole sweep through
     [Domain.join].  Now it becomes a failing [Worker_failed] verdict for
     that vector, and the winning vector is domain-count-invariant. *)
  let vectors = Consensus_task.binary_inputs 2 in
  let machine, specs = Consensus_protocols.from_consensus_obj ~m:2 in
  let check inputs =
    if Value.equal inputs.(0) (Value.int 1) then failwith "checker bug";
    Solvability.check_consensus ~machine ~specs ~inputs ()
  in
  let reference = Solvability.for_all_inputs ~domains:1 check vectors in
  Alcotest.(check bool) "sweep fails" false reference.Solvability.ok;
  (match reference.Solvability.outcome with
  | Supervisor.Worker_failed { attempts = 3; _ } -> ()
  | o ->
    Alcotest.failf "expected exhausted retries, got %a" Supervisor.pp_outcome
      o);
  (match reference.Solvability.failure with
  | Some msg when contains_sub ~sub:"checker raised" msg -> ()
  | Some msg -> Alcotest.failf "unexpected failure message %S" msg
  | None -> Alcotest.fail "no failure message");
  List.iter
    (fun d ->
      let v = Solvability.for_all_inputs ~domains:d check vectors in
      Alcotest.(check bool) (Fmt.str "domains=%d fails" d) false
        v.Solvability.ok;
      if
        not
          (Value.equal
             (Value.list (Array.to_list v.Solvability.inputs))
             (Value.list (Array.to_list reference.Solvability.inputs)))
      then Alcotest.failf "domains=%d picked a different failing vector" d)
    [ 2; 3; 4 ]

let test_run_shard_retries_then_fails () =
  let calls = ref 0 in
  (match
     Supervisor.run_shard ~backoff_s:1e-6 ~worker:7 (fun () ->
         incr calls;
         failwith "always")
   with
  | Ok () -> Alcotest.fail "expected failure"
  | Error (msg, attempts) ->
    Alcotest.(check int) "three attempts" 3 attempts;
    Alcotest.(check bool) "message kept" true (contains_sub ~sub:"always" msg));
  Alcotest.(check int) "body ran once per attempt" 3 !calls;
  match
    Supervisor.run_shard ~backoff_s:1e-6 ~worker:7 (fun () ->
        incr calls;
        if !calls < 5 then failwith "flaky" else 42)
  with
  | Ok v -> Alcotest.(check int) "recovers" 42 v
  | Error (msg, _) -> Alcotest.failf "should have recovered: %s" msg

(* --- deterministic chaos ----------------------------------------------- *)

let with_chaos seed f =
  Supervisor.Chaos.arm ~seed ();
  Fun.protect ~finally:Supervisor.Chaos.disarm f

let test_chaos_preserves_graph_and_verdict () =
  let machine, specs, inputs = dac_instance 4 in
  let clean = Cgraph.build ~domains:2 ~machine ~specs ~inputs () in
  List.iter
    (fun d ->
      let g =
        with_chaos 11 (fun () ->
            Cgraph.build ~domains:d ~machine ~specs ~inputs ())
      in
      expect_outcome (Fmt.str "chaos domains=%d completes" d) Supervisor.Done
        g.Cgraph.stop;
      same_graph (Fmt.str "chaos domains=%d" d) clean g)
    [ 1; 2; 4 ];
  let vectors = Dac.binary_inputs 3 in
  let machine3, specs3, _ = dac_instance 3 in
  let check inputs =
    Solvability.check_dac ~domains:1 ~machine:machine3 ~specs:specs3 ~inputs
      ()
  in
  let reference = Solvability.for_all_inputs ~domains:1 check vectors in
  List.iter
    (fun d ->
      let v =
        with_chaos 23 (fun () ->
            Solvability.for_all_inputs ~domains:d check vectors)
      in
      Alcotest.(check bool)
        (Fmt.str "chaos domains=%d verdict" d)
        reference.Solvability.ok v.Solvability.ok;
      expect_outcome
        (Fmt.str "chaos domains=%d outcome" d)
        reference.Solvability.outcome v.Solvability.outcome)
    [ 1; 2; 4 ]

(* --- checkpoint / resume ----------------------------------------------- *)

let roundtrip_through_disk ~label s =
  let file = Filename.temp_file "lbsa-ckpt" ".bin" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists file then Sys.remove file)
    (fun () ->
      Checkpoint.save ~file (Checkpoint.freeze ~label s);
      let c = Checkpoint.load ~file in
      Alcotest.(check string) "label survives" label (Checkpoint.label c);
      (* Shift the intern id space before thawing: resumed graphs must
         not depend on the ids this process happened to assign. *)
      for i = 1 to 1_000 do
        ignore (Value.list [ Value.int (5_000_000 + i); Value.sym "junk" ])
      done;
      Checkpoint.thaw c)

let test_resume_from_deadline_checkpoint () =
  let machine, specs, inputs = dac_instance 3 in
  let full = Cgraph.build ~machine ~specs ~inputs () in
  let partial =
    Cgraph.build ~budget:(expired ()) ~machine ~specs ~inputs ()
  in
  expect_outcome "stopped at the first level" Supervisor.Deadline
    partial.Cgraph.stop;
  let s = Option.get partial.Cgraph.suspended in
  let resumed =
    Cgraph.build
      ~resume:(roundtrip_through_disk ~label:"dac3 from-initial" s)
      ~machine ~specs ~inputs ()
  in
  expect_outcome "resume runs to completion" Supervisor.Done
    resumed.Cgraph.stop;
  same_graph "deadline-0 resume = uninterrupted" full resumed

let test_resume_from_midway_checkpoint () =
  (* Truncate mid-exploration (nonzero expanded prefix, partially built
     edge array), persist, thaw, finish: identical graph. *)
  let machine, specs, inputs = dac_instance 3 in
  let full = Cgraph.build ~machine ~specs ~inputs () in
  let partial =
    Cgraph.build ~max_states:40 ~machine ~specs ~inputs ()
  in
  expect_outcome "quota fired" Supervisor.Truncated partial.Cgraph.stop;
  let s = Option.get partial.Cgraph.suspended in
  let resumed =
    Cgraph.build
      ~resume:(roundtrip_through_disk ~label:"dac3 midway" s)
      ~machine ~specs ~inputs ()
  in
  same_graph "midway resume = uninterrupted" full resumed;
  (* And resuming across domain counts still agrees. *)
  let resumed4 =
    Cgraph.build ~domains:4 ~resume:(Option.get partial.Cgraph.suspended)
      ~machine ~specs ~inputs ()
  in
  same_graph "midway resume, 4 domains" full resumed4

let test_checkpoint_rejects_foreign_files () =
  let file = Filename.temp_file "lbsa-ckpt" ".bin" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists file then Sys.remove file)
    (fun () ->
      let oc = open_out_bin file in
      output_string oc "not a checkpoint at all";
      close_out oc;
      match Checkpoint.load ~file with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "foreign file accepted")

(* --- fuzz engine under budgets ----------------------------------------- *)

let test_fan_budget_stops_and_resumes () =
  let run i = if i = 25 then Some (i * 3) else None in
  let stopped =
    Fuzz_engine.fan ~domains:2 ~budget:(expired ()) ~trials:40 ~run ()
  in
  Alcotest.(check (option (pair int int))) "no hit" None stopped.Fuzz_engine.hit;
  Alcotest.(check int) "nothing completed" 0 stopped.Fuzz_engine.fan_completed;
  expect_outcome "deadline surfaces" Supervisor.Deadline
    stopped.Fuzz_engine.fan_outcome;
  (* Resume from an arbitrary completed prefix: same hit, any domains. *)
  List.iter
    (fun d ->
      let r = Fuzz_engine.fan ~domains:d ~start:10 ~trials:40 ~run () in
      Alcotest.(check (option (pair int int)))
        (Fmt.str "resumed, domains=%d" d)
        (Some (25, 75)) r.Fuzz_engine.hit)
    [ 1; 2; 4 ]

let test_fuzz_checkpoint_roundtrip () =
  let t = Fuzz_targets.spec_target "pac:2" in
  let full = Fuzz_engine.fuzz_spec ~domains:1 ~trials:50 ~seed:5 t in
  let stopped =
    Fuzz_engine.fuzz_spec ~domains:1 ~budget:(expired ()) ~trials:50 ~seed:5 t
  in
  expect_outcome "campaign stopped" Supervisor.Deadline
    stopped.Fuzz_engine.outcome;
  let ckpt = Fuzz_engine.checkpoint_of_reports ~seed:5 [ stopped ] in
  let file = Filename.temp_file "lbsa-fuzz" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists file then Sys.remove file)
    (fun () ->
      Fuzz_engine.save_checkpoint ~file ckpt;
      let c = Fuzz_engine.load_checkpoint ~file in
      Alcotest.(check int) "seed" 5 c.Fuzz_engine.ckpt_seed;
      let start =
        Fuzz_engine.resume_start c ~name:stopped.Fuzz_engine.rtarget
      in
      Alcotest.(check int) "completed prefix" stopped.Fuzz_engine.completed
        start;
      let resumed = Fuzz_engine.fuzz_spec ~domains:1 ~start ~trials:50 ~seed:5 t in
      expect_outcome "resumed campaign finishes" Supervisor.Done
        resumed.Fuzz_engine.outcome;
      Alcotest.(check int) "all trials accounted for" full.Fuzz_engine.completed
        resumed.Fuzz_engine.completed;
      Alcotest.(check bool) "same (absent) failure" true
        (full.Fuzz_engine.failure = None && resumed.Fuzz_engine.failure = None))

let test_shrink_budget_zero_reports_no_shrink () =
  (* Regression: a 0-budget descent returns the original case, which
     used to be reported as [shrunk = Some original] — a "shrunk to N
     calls" claim for a case that never shrank (and, mid-descent, was
     never re-validated).  The failure itself must still be reported,
     with the shrink record honestly absent. *)
  let t = Fuzz_targets.impl_target "mutant-pac:2" in
  let r =
    Fuzz_engine.fuzz_impl ~domains:1 ~shrink_budget:0 ~trials:500 ~seed:42 t
  in
  match r.Fuzz_engine.failure with
  | None -> Alcotest.fail "fuzzer missed the known-bad target"
  | Some f -> (
    match f.Fuzz_engine.shrunk with
    | None -> ()
    | Some (c, _) ->
      Alcotest.failf "budget 0 reported a phantom shrink to %d calls"
        (Fuzz_case.n_calls c));
    (* With a real budget the same failure must shrink to a strictly
       smaller (or equal-size, but then unreported) re-validated case. *)
    (let r' =
       Fuzz_engine.fuzz_impl ~domains:1 ~trials:500 ~seed:42 t
     in
     match r'.Fuzz_engine.failure with
     | None -> Alcotest.fail "fuzzer missed the known-bad target unshrunk"
     | Some f' -> (
       match f'.Fuzz_engine.shrunk with
       | None -> ()
       | Some (c, _) ->
         (* Shrink steps drop calls or faults, never add either. *)
         Alcotest.(check bool) "a reported shrink is no larger" true
           (Fuzz_case.n_calls c <= Fuzz_case.n_calls f'.Fuzz_engine.case)))

let test_campaign_supervised_stops () =
  let impl = Snapshot_impl.implementation ~n:3 in
  let workloads =
    Array.init 3 (fun pid ->
        [ Classic.Snapshot.update pid (Value.int (pid + 1));
          Classic.Snapshot.scan ])
  in
  (match
     Harness.campaign_supervised ~budget:(expired ()) ~seed:1 ~trials:10
       ~impl ~workloads ()
   with
  | Harness.Stopped { completed = 0; outcome = Supervisor.Deadline } -> ()
  | Harness.Stopped { completed; outcome } ->
    Alcotest.failf "stopped after %d trials with %a" completed
      Supervisor.pp_outcome outcome
  | Harness.All_pass _ | Harness.Failed _ -> Alcotest.fail "expected Stopped");
  match
    Harness.campaign_supervised ~seed:1 ~trials:10 ~impl ~workloads ()
  with
  | Harness.All_pass 10 -> ()
  | _ -> Alcotest.fail "unlimited budget should pass all trials"

(* --- the CLI acceptance property --------------------------------------- *)

let test_cli_interrupt_resume_byte_identical () =
  (* `lbsa solve` interrupted at the first safe point (--deadline 0),
     checkpointed, and resumed must print byte-for-byte what the
     uninterrupted run prints — with chaos riding along on the resume. *)
  let exe =
    Filename.concat
      (Filename.dirname Sys.executable_name)
      (Filename.concat ".." (Filename.concat "bin" "lbsa_cli.exe"))
  in
  if not (Sys.file_exists exe) then
    Alcotest.fail (Fmt.str "CLI executable not found at %s" exe);
  let full = Filename.temp_file "lbsa-full" ".txt" in
  let resumed = Filename.temp_file "lbsa-resumed" ".txt" in
  let ckpt = Filename.temp_file "lbsa-solve" ".ckpt" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun f -> if Sys.file_exists f then Sys.remove f)
        [ full; resumed; ckpt ])
    (fun () ->
      let q = Filename.quote in
      let run fmt = Fmt.kstr Sys.command fmt in
      Alcotest.(check int) "uninterrupted run passes" 0
        (run "%s solve dac -n 3 > %s 2>/dev/null" (q exe) (q full));
      Alcotest.(check int) "deadline-0 run is partial" 2
        (run "%s solve dac -n 3 --deadline 0 --checkpoint %s > /dev/null 2>&1"
           (q exe) (q ckpt));
      Alcotest.(check int) "resumed run passes" 0
        (run "%s solve dac -n 3 --resume %s --chaos-seed 11 > %s 2>/dev/null"
           (q exe) (q ckpt) (q resumed));
      Alcotest.(check int) "stdout is byte-for-byte identical" 0
        (run "cmp -s %s %s" (q full) (q resumed)))

(* --- Ctbl under adversarial hashing (satellite 4) ----------------------- *)

let config_of_int i =
  Config.initial ~machine:Machine.trivial_decide_input ~specs:[||]
    ~inputs:[| Value.int i |]

let test_ctbl_all_equal_hashes () =
  (* 200 distinct keys, every one claiming hash 0: the table degrades to
     a probe chain but must stay correct — no livelock, distinct ids,
     hits and misses exact, and the probe telemetry must show that the
     stored-hash shortcut can never dismiss a slot. *)
  let n = 200 in
  let t = Ctbl.create 1 in
  for i = 0 to n - 1 do
    let id = Ctbl.find_or_add t (config_of_int i) ~hash:0 ~if_absent:(fun _ -> i) in
    Alcotest.(check int) "fresh insert keeps its id" i id
  done;
  Alcotest.(check int) "all keys distinct" n (Ctbl.length t);
  for i = 0 to n - 1 do
    match Ctbl.find_opt t (config_of_int i) ~hash:0 with
    | Some id when id = i -> ()
    | Some id -> Alcotest.failf "key %d resolved to id %d" i id
    | None -> Alcotest.failf "key %d lost" i
  done;
  Alcotest.(check (option int))
    "miss stays a miss" None
    (Ctbl.find_opt t (config_of_int (n + 777)) ~hash:0);
  let st = Ctbl.probe_stats t in
  Alcotest.(check int)
    "equal hashes can never be dismissed by hash" 0 st.Ctbl.hash_skips;
  if st.Ctbl.equal_confirms < n then
    Alcotest.failf "implausible telemetry: %d structural compares for %d hits"
      st.Ctbl.equal_confirms n;
  if st.Ctbl.probes < st.Ctbl.equal_confirms then
    Alcotest.failf "probe count %d below confirm count %d" st.Ctbl.probes
      st.Ctbl.equal_confirms

let test_ctbl_growth_from_capacity_one () =
  (* Seed the table at capacity 1 and push three orders of magnitude
     through it: growth must preserve every binding and re-insertions at
     capacity must stay idempotent. *)
  let n = 1_000 in
  let t = Ctbl.create 1 in
  for i = 0 to n - 1 do
    let c = config_of_int i in
    ignore (Ctbl.find_or_add t c ~hash:(Config.hash c) ~if_absent:(fun _ -> i))
  done;
  Alcotest.(check int) "all inserted across growth" n (Ctbl.length t);
  for i = 0 to n - 1 do
    let c = config_of_int i in
    let id = Ctbl.find_or_add t c ~hash:(Config.hash c) ~if_absent:(fun _ -> -1) in
    Alcotest.(check int) "binding stable across growth" i id
  done;
  Alcotest.(check int) "no phantom entries" n (Ctbl.length t)

(* --- the sharded dedup table and out-of-core builds ---------------------- *)

(* Reduction modes for the equivalence matrix, built the way the serve
   API builds them (dac's PAC object is inert once upset — the [frozen]
   certification the sleep layer wants). *)
let dac_reductions n =
  let frozen obj st = obj = 0 && Pac.is_upset st in
  [
    Cgraph.no_reduction;
    { Cgraph.rname = "sym"; canon = Canon.dac ~n; sleep = false; frozen = None };
    { Cgraph.rname = "sym+sleep"; canon = Canon.dac ~n; sleep = true;
      frozen = Some frozen };
  ]

(* The tentpole's central property: the dedup shard count changes probe
   routing and growth locality, never the graph.  Node set, edge set
   and verdict are identical across shard counts and reduction modes,
   and agree with the sequential [build_cmap] oracle. *)
let test_sharded_equals_single () =
  let machine, specs, inputs = dac_instance 3 in
  List.iter
    (fun reduce ->
      let oracle = Cgraph.build_cmap ~reduce ~machine ~specs ~inputs () in
      let baseline =
        Solvability.check_dac ~domains:1 ~reduce ~shards:1 ~machine ~specs
          ~inputs ()
      in
      List.iter
        (fun shards ->
          let g = Cgraph.build ~reduce ~shards ~machine ~specs ~inputs () in
          same_graph
            (Fmt.str "%s shards=%d vs oracle" reduce.Cgraph.rname shards)
            oracle g;
          Alcotest.(check int)
            (Fmt.str "%s shards=%d: stats report the count"
               reduce.Cgraph.rname shards)
            shards (Cgraph.stats g).Cgraph.shards;
          let v =
            Solvability.check_dac ~domains:1 ~reduce ~shards ~machine ~specs
              ~inputs ()
          in
          Alcotest.(check bool)
            (Fmt.str "%s shards=%d: verdict" reduce.Cgraph.rname shards)
            baseline.Solvability.ok v.Solvability.ok;
          expect_outcome
            (Fmt.str "%s shards=%d: outcome" reduce.Cgraph.rname shards)
            baseline.Solvability.outcome v.Solvability.outcome)
        [ 1; 4; 64 ])
    (dac_reductions 3)

(* Adversarial routing: every key carries hash 0, so all of them route
   to shard 0 and collide there.  The hot shard must stay correct and
   grow alone — the 63 idle shards keep their initial capacity. *)
let test_sharded_one_hot_shard () =
  let n = 600 in
  let t = Ctbl_sharded.create ~shards:64 1 in
  for i = 0 to n - 1 do
    let id =
      Ctbl_sharded.find_or_add t (config_of_int i) ~hash:0
        ~if_absent:(fun _ -> i)
    in
    Alcotest.(check int) (Fmt.str "insert %d keeps its id" i) i id
  done;
  Alcotest.(check int) "all keys distinct" n (Ctbl_sharded.length t);
  for i = 0 to n - 1 do
    match Ctbl_sharded.find_opt t (config_of_int i) ~hash:0 with
    | Some id -> Alcotest.(check int) (Fmt.str "find %d" i) i id
    | None -> Alcotest.failf "key %d lost" i
  done;
  Alcotest.(check (option int))
    "absent key still missing" None
    (Ctbl_sharded.find_opt t (config_of_int (n + 777)) ~hash:0);
  let ss = Ctbl_sharded.shard_stats t in
  Alcotest.(check int) "shard 0 holds everything" n ss.(0).Ctbl_sharded.ss_size;
  Array.iteri
    (fun i s ->
      if i > 0 then begin
        Alcotest.(check int)
          (Fmt.str "shard %d empty" i) 0 s.Ctbl_sharded.ss_size;
        Alcotest.(check int)
          (Fmt.str "shard %d never grew" i)
          16 s.Ctbl_sharded.ss_capacity
      end)
    ss

(* Freezing keeps lookups exact: frozen slots answer through [resolve]
   (counted as faults), resident ones never fault, and probe chains
   running through frozen slots stay intact.  This doubles as the
   regression guard for the sentinel-sharing defect: [frozen_key] and
   the empty-slot marker were once compiled to the same static block,
   so freezing silently emptied slots — resident entries behind them
   went unfindable and re-encounters of frozen states got fresh ids. *)
let test_sharded_freeze_resolves () =
  let n = 100 and limit = 50 in
  let all = Array.init n config_of_int in
  let resolve id = all.(id) in
  List.iter
    (fun shards ->
      let t = Ctbl_sharded.create ~shards ~resolve 16 in
      for i = 0 to n - 1 do
        ignore
          (Ctbl_sharded.find_or_add t all.(i) ~hash:(Config.hash all.(i))
             ~if_absent:(fun _ -> i))
      done;
      let froze = Ctbl_sharded.freeze_below t ~id_limit:limit in
      Alcotest.(check int)
        (Fmt.str "shards=%d: froze the cold prefix" shards)
        limit froze;
      Alcotest.(check int)
        (Fmt.str "shards=%d: frozen count" shards)
        limit (Ctbl_sharded.frozen t);
      for i = 0 to n - 1 do
        match
          Ctbl_sharded.find_opt t all.(i) ~hash:(Config.hash all.(i))
        with
        | Some id when id = i -> ()
        | Some id ->
          Alcotest.failf "shards=%d: key %d resolved to %d" shards i id
        | None -> Alcotest.failf "shards=%d: key %d lost to freezing" shards i
      done;
      Alcotest.(check bool)
        (Fmt.str "shards=%d: frozen hits fault" shards)
        true
        (Ctbl_sharded.faults t >= limit);
      (* re-adding a frozen key must dedup, not mint a fresh id *)
      let id =
        Ctbl_sharded.find_or_add t all.(0) ~hash:(Config.hash all.(0))
          ~if_absent:(fun _ -> Alcotest.fail "frozen key re-added as new")
      in
      Alcotest.(check int) (Fmt.str "shards=%d: dedup survives" shards) 0 id)
    [ 1; 4; 64 ]

(* Out-of-core builds: an aggressively tiny threshold forces many
   spill waves on dac:3, and the graph must stay bit-identical to the
   resident build's, for every shard count and reduction mode.
   [same_graph] reads every node, so it also exercises fault-in. *)
let test_spill_build_equivalence () =
  let machine, specs, inputs = dac_instance 3 in
  let dir = Filename.temp_file "lbsa-spill" ".d" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () -> Segstore.clean_dir ~dir)
    (fun () ->
      List.iter
        (fun reduce ->
          let resident = Cgraph.build ~reduce ~machine ~specs ~inputs () in
          List.iter
            (fun shards ->
              let spill =
                { Cgraph.spill_dir = dir; spill_threshold = 20 }
              in
              let g =
                Cgraph.build ~reduce ~shards ~spill ~machine ~specs ~inputs ()
              in
              let label =
                Fmt.str "spilled %s shards=%d" reduce.Cgraph.rname shards
              in
              let sp = (Cgraph.stats g).Cgraph.spill in
              Alcotest.(check bool)
                (label ^ ": spill engaged") true
                (sp.Cgraph.sp_segments > 0 && sp.Cgraph.sp_bytes > 0);
              Alcotest.(check bool)
                (label ^ ": dedup keys went cold") true
                (sp.Cgraph.sp_frozen > 0);
              same_graph label resident g)
            [ 1; 4 ])
        (dac_reductions 3);
      (* path-based cleanup drops the segment files and the directory *)
      Segstore.clean_dir ~dir;
      Alcotest.(check bool)
        "spill dir fully cleaned" false (Sys.file_exists dir))

(* Interrupting a spilled build, checkpointing it (format 3), and
   resuming yields the uninterrupted graph: the suspended state is
   materialized out of the segments, frozen through the Mirror forms,
   and re-interned on load. *)
let test_spill_checkpoint_resume () =
  let machine, specs, inputs = dac_instance 3 in
  let full = Cgraph.build ~machine ~specs ~inputs () in
  let dir = Filename.temp_file "lbsa-spill" ".d" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () -> Segstore.clean_dir ~dir)
    (fun () ->
      let spill = { Cgraph.spill_dir = dir; spill_threshold = 20 } in
      let partial =
        Cgraph.build ~max_states:100 ~spill ~machine ~specs ~inputs ()
      in
      expect_outcome "quota fired mid-spill" Supervisor.Truncated
        partial.Cgraph.stop;
      Alcotest.(check bool)
        "the partial build really spilled" true
        ((Cgraph.stats partial).Cgraph.spill.Cgraph.sp_segments > 0);
      let s = Option.get partial.Cgraph.suspended in
      let resumed =
        Cgraph.build
          ~resume:(roundtrip_through_disk ~label:"dac3 spilled midway" s)
          ~machine ~specs ~inputs ()
      in
      same_graph "spilled interrupt/resume = uninterrupted" full resumed;
      (* and resuming back INTO a spilled build also agrees *)
      let resumed_spilled =
        Cgraph.build ~spill ~shards:4
          ~resume:(Option.get partial.Cgraph.suspended)
          ~machine ~specs ~inputs ()
      in
      same_graph "resume into a spilled sharded build" full resumed_spilled)

(* The version-3 compatibility rule: a coherent checkpoint from an
   older format version raises [Version_mismatch] (CLIs exit 2), never
   [Failure] and never a misread. *)
let test_checkpoint_v2_refused () =
  let file = Filename.temp_file "lbsa-ckpt" ".bin" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists file then Sys.remove file)
    (fun () ->
      let oc = open_out_bin file in
      output_string oc "LBSA-CHECKPOINT/2\nwhatever the old format held";
      close_out oc;
      match Checkpoint.load ~file with
      | exception Checkpoint.Version_mismatch msg ->
        Alcotest.(check bool)
          "names the found version" true
          (contains_sub ~sub:"LBSA-CHECKPOINT/2" msg)
      | exception Failure msg ->
        Alcotest.failf "old version reported as plain failure: %s" msg
      | _ -> Alcotest.fail "version-2 checkpoint accepted")

let () =
  Alcotest.run "supervisor"
    [
      ( "outcomes",
        [
          Alcotest.test_case "state quota yields a partial verdict" `Quick
            test_truncation_is_partial_verdict;
          Alcotest.test_case "deadline yields a partial verdict" `Quick
            test_deadline_is_partial_verdict;
          Alcotest.test_case "cancellation wins over the deadline" `Quick
            test_cancellation_is_partial_verdict;
          Alcotest.test_case "SIGINT routes into the token" `Quick
            test_sigint_routes_to_token;
        ] );
      ( "fault isolation",
        [
          Alcotest.test_case "raising machine is contained" `Quick
            test_graph_isolates_raising_machine;
          Alcotest.test_case "raising checker no longer aborts the sweep"
            `Quick test_sweep_survives_raising_checker;
          Alcotest.test_case "run_shard retry discipline" `Quick
            test_run_shard_retries_then_fails;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "injected failures never change results" `Quick
            test_chaos_preserves_graph_and_verdict;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "resume from a deadline-0 checkpoint" `Quick
            test_resume_from_deadline_checkpoint;
          Alcotest.test_case "resume from a midway checkpoint" `Quick
            test_resume_from_midway_checkpoint;
          Alcotest.test_case "foreign files rejected" `Quick
            test_checkpoint_rejects_foreign_files;
        ] );
      ( "fuzz budgets",
        [
          Alcotest.test_case "fan stops on budget and resumes" `Quick
            test_fan_budget_stops_and_resumes;
          Alcotest.test_case "fuzz checkpoint roundtrip" `Quick
            test_fuzz_checkpoint_roundtrip;
          Alcotest.test_case "shrink budget 0 reports no shrink" `Quick
            test_shrink_budget_zero_reports_no_shrink;
          Alcotest.test_case "campaign_supervised stops cleanly" `Quick
            test_campaign_supervised_stops;
        ] );
      ( "cli",
        [
          Alcotest.test_case "interrupt/resume is byte-identical" `Quick
            test_cli_interrupt_resume_byte_identical;
        ] );
      ( "ctbl adversarial",
        [
          Alcotest.test_case "all-equal-hash collisions" `Quick
            test_ctbl_all_equal_hashes;
          Alcotest.test_case "growth from capacity one" `Quick
            test_ctbl_growth_from_capacity_one;
        ] );
      ( "out of core",
        [
          Alcotest.test_case "sharded = single-table, any shard count" `Quick
            test_sharded_equals_single;
          Alcotest.test_case "adversarial one-hot shard routing" `Quick
            test_sharded_one_hot_shard;
          Alcotest.test_case "frozen slots resolve exactly" `Quick
            test_sharded_freeze_resolves;
          Alcotest.test_case "spilled build = resident build" `Quick
            test_spill_build_equivalence;
          Alcotest.test_case "spill + checkpoint + resume" `Quick
            test_spill_checkpoint_resume;
          Alcotest.test_case "version-2 checkpoint refused" `Quick
            test_checkpoint_v2_refused;
        ] );
    ]
