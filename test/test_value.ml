(* Tests for the universal value type and the sequential-spec layer. *)

open Lbsa

let v = Alcotest.testable Value.pp Value.equal

let sample_values =
  Value.
    [
      unit_;
      bool false;
      bool true;
      int (-3);
      int 0;
      int 42;
      sym "a";
      sym "b";
      bot;
      nil;
      done_;
      pair (int 1, sym "x");
      list [];
      list [ int 1; int 2 ];
      list [ int 1; int 2; int 3 ];
    ]

let test_compare_reflexive () =
  List.iter
    (fun x -> Alcotest.(check int) "x = x" 0 (Value.compare x x))
    sample_values

let test_compare_antisymmetric () =
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          let c1 = Value.compare x y and c2 = Value.compare y x in
          Alcotest.(check bool) "antisymmetry" true (c1 = -c2 || (c1 = 0 && c2 = 0)))
        sample_values)
    sample_values

let test_compare_transitive () =
  let sorted = List.sort Value.compare sample_values in
  let rec check = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "sorted order" true (Value.compare a b <= 0);
      check rest
    | _ -> ()
  in
  check sorted

let test_equal_hash_consistent () =
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          if Value.equal x y then
            Alcotest.(check int) "equal implies same hash" (Value.hash x)
              (Value.hash y))
        sample_values)
    sample_values

let test_pp () =
  Alcotest.(check string) "bot" "⊥" (Value.to_string Value.bot);
  Alcotest.(check string) "nil" "NIL" (Value.to_string Value.nil);
  Alcotest.(check string) "done" "done" (Value.to_string Value.done_);
  Alcotest.(check string) "pair" "(1, x)"
    (Value.to_string Value.(pair (int 1, sym "x")));
  Alcotest.(check string) "list" "[1; 2]"
    (Value.to_string Value.(list [ int 1; int 2 ]))

let test_accessors () =
  Alcotest.(check (option int)) "to_int" (Some 5) (Value.to_int (Value.int 5));
  Alcotest.(check (option int)) "to_int sym" None (Value.to_int (Value.sym "x"));
  Alcotest.(check int) "to_int_exn" 7 (Value.to_int_exn (Value.int 7));
  Alcotest.check_raises "to_int_exn fails" (Invalid_argument "Value.to_int_exn: ⊥")
    (fun () -> ignore (Value.to_int_exn Value.bot));
  Alcotest.(check bool) "is_bot" true (Value.is_bot Value.bot);
  Alcotest.(check bool) "is_nil" true (Value.is_nil Value.nil);
  Alcotest.(check bool) "is_nil of bot" false (Value.is_nil Value.bot)

let test_assoc () =
  let m = Value.Assoc.empty in
  let m = Value.Assoc.set m (Value.int 2) (Value.sym "two") in
  let m = Value.Assoc.set m (Value.int 1) (Value.sym "one") in
  Alcotest.(check (option v)) "get 1" (Some (Value.sym "one"))
    (Value.Assoc.get m (Value.int 1));
  Alcotest.(check (option v)) "get 2" (Some (Value.sym "two"))
    (Value.Assoc.get m (Value.int 2));
  Alcotest.(check (option v)) "get missing" None (Value.Assoc.get m (Value.int 3));
  (* Insertion order must not matter for equality (sorted encoding). *)
  let m' = Value.Assoc.of_bindings
      [ (Value.int 1, Value.sym "one"); (Value.int 2, Value.sym "two") ]
  in
  Alcotest.(check v) "order-insensitive" m m';
  (* Overwrite. *)
  let m2 = Value.Assoc.set m (Value.int 1) (Value.sym "uno") in
  Alcotest.(check (option v)) "overwrite" (Some (Value.sym "uno"))
    (Value.Assoc.get m2 (Value.int 1));
  Alcotest.(check int) "bindings length" 2 (List.length (Value.Assoc.bindings m2))

let test_set () =
  let s = Value.Set_.empty in
  let s = Value.Set_.add (Value.int 2) s in
  let s = Value.Set_.add (Value.int 1) s in
  let s = Value.Set_.add (Value.int 2) s in
  Alcotest.(check int) "cardinal dedups" 2 (Value.Set_.cardinal s);
  Alcotest.(check bool) "mem 1" true (Value.Set_.mem (Value.int 1) s);
  Alcotest.(check bool) "mem 3" false (Value.Set_.mem (Value.int 3) s);
  let s' = Value.Set_.of_list [ Value.int 1; Value.int 2 ] in
  Alcotest.(check v) "order-insensitive" s s'

let test_op () =
  let op1 = Op.make "propose" [ Value.int 1 ] in
  let op2 = Op.make "propose" [ Value.int 1 ] in
  let op3 = Op.make "propose" [ Value.int 2 ] in
  Alcotest.(check bool) "op equal" true (Op.equal op1 op2);
  Alcotest.(check bool) "op differ" false (Op.equal op1 op3);
  Alcotest.(check string) "op pp" "propose(1)" (Op.to_string op1);
  Alcotest.(check string) "op pp nullary" "read()"
    (Op.to_string (Op.make "read" []))

let test_shistory_replay () =
  let reg = Register.spec () in
  let h, final =
    Shistory.run reg [ Register.write (Value.int 5); Register.read ]
  in
  Alcotest.(check v) "final state" (Value.int 5) final;
  Alcotest.(check (list v)) "responses" [ Value.unit_; Value.int 5 ]
    (Shistory.responses h);
  Alcotest.(check bool) "admissible" true (Shistory.admissible reg h);
  (* Tamper with a response: no longer admissible. *)
  let bad =
    List.map
      (fun (e : Shistory.event) ->
        if Op.equal e.op Register.read then { e with Shistory.response = Value.int 6 }
        else e)
      h
  in
  Alcotest.(check bool) "tampered inadmissible" false (Shistory.admissible reg bad)

let test_shistory_nondet_replay () =
  (* 2-SA: propose a then b; the second response is either a or b, so
     replay must track both branch resolutions. *)
  let sa = Sa2.spec () in
  let h =
    [
      Shistory.event (Sa2.propose (Value.int 1)) (Value.int 1);
      Shistory.event (Sa2.propose (Value.int 2)) (Value.int 2);
    ]
  in
  Alcotest.(check bool) "b-response admissible" true (Shistory.admissible sa h);
  let h' =
    [
      Shistory.event (Sa2.propose (Value.int 1)) (Value.int 1);
      Shistory.event (Sa2.propose (Value.int 2)) (Value.int 1);
    ]
  in
  Alcotest.(check bool) "a-response admissible" true (Shistory.admissible sa h');
  let bad =
    [ Shistory.event (Sa2.propose (Value.int 1)) (Value.int 9) ]
  in
  Alcotest.(check bool) "foreign response inadmissible" false
    (Shistory.admissible sa bad)

(* --- Listx -------------------------------------------------------------- *)

let fact n = List.fold_left ( * ) 1 (Listx.range 1 n)

let test_listx_range () =
  Alcotest.(check (list int)) "range" [ 2; 3; 4 ] (Listx.range 2 4);
  Alcotest.(check (list int)) "empty range" [] (Listx.range 3 2);
  Alcotest.(check (list int)) "singleton" [ 5 ] (Listx.range 5 5)

let test_listx_sort_uniq () =
  Alcotest.(check (list int)) "dedup" [ 1; 2; 3 ]
    (Listx.sort_uniq compare [ 3; 1; 2; 1; 3; 3 ])

let test_listx_interleavings () =
  (* Count: multinomial coefficient; order preservation within each
     sequence. *)
  let inter = Listx.interleavings [ [ 1; 2 ]; [ 3; 4 ] ] in
  Alcotest.(check int) "C(4,2) = 6" 6 (List.length inter);
  List.iter
    (fun order ->
      let pos x = Option.get (List.find_index (( = ) x) order) in
      Alcotest.(check bool) "1 before 2" true (pos 1 < pos 2);
      Alcotest.(check bool) "3 before 4" true (pos 3 < pos 4))
    inter;
  (* Singletons: permutations. *)
  Alcotest.(check int) "3! permutations" (fact 3)
    (List.length (Listx.interleavings [ [ 1 ]; [ 2 ]; [ 3 ] ]));
  Alcotest.(check (list (list int))) "empty input" [ [] ]
    (Listx.interleavings [])

let test_listx_misc () =
  Alcotest.(check int) "count" 2 (Listx.count (fun x -> x > 1) [ 0; 2; 3 ]);
  Alcotest.(check int) "max_by" 9 (Listx.max_by compare [ 3; 9; 1 ]);
  Alcotest.(check (list int)) "take" [ 1; 2 ] (Listx.take 2 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "take beyond" [ 1 ] (Listx.take 5 [ 1 ]);
  Alcotest.(check int) "cartesian size" 6
    (List.length (Listx.cartesian [ 1; 2 ] [ 3; 4; 5 ]))

(* --- PRNG ---------------------------------------------------------------- *)

let test_prng_reproducible () =
  let a = Prng.create 42 and b = Prng.create 42 in
  Alcotest.(check (list int)) "same stream"
    (List.init 10 (fun _ -> Prng.int a 1000))
    (List.init 10 (fun _ -> Prng.int b 1000))

let test_prng_split_independent () =
  let a = Prng.create 42 in
  let c = Prng.split a in
  (* The split stream differs from the parent's continuation. *)
  let xs = List.init 10 (fun _ -> Prng.int a 1_000_000) in
  let ys = List.init 10 (fun _ -> Prng.int c 1_000_000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_prng_bounds () =
  let p = Prng.create 7 in
  for _ = 1 to 1000 do
    let x = Prng.int p 13 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 13)
  done;
  Alcotest.check_raises "bound 0 rejected"
    (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Prng.int p 0))

let test_prng_shuffle () =
  let p = Prng.create 5 in
  let a = [| 1; 2; 3; 4; 5 |] in
  let s = Prng.shuffle p a in
  Alcotest.(check (list int)) "permutation" [ 1; 2; 3; 4; 5 ]
    (List.sort compare (Array.to_list s));
  Alcotest.(check (list int)) "original untouched" [ 1; 2; 3; 4; 5 ]
    (Array.to_list a)

let () =
  Alcotest.run "value"
    [
      ( "value",
        [
          Alcotest.test_case "compare reflexive" `Quick test_compare_reflexive;
          Alcotest.test_case "compare antisymmetric" `Quick
            test_compare_antisymmetric;
          Alcotest.test_case "compare transitive (sorted)" `Quick
            test_compare_transitive;
          Alcotest.test_case "equal implies equal hash" `Quick
            test_equal_hash_consistent;
          Alcotest.test_case "pretty-printing" `Quick test_pp;
          Alcotest.test_case "accessors" `Quick test_accessors;
        ] );
      ( "assoc-and-set",
        [
          Alcotest.test_case "assoc maps" `Quick test_assoc;
          Alcotest.test_case "value sets" `Quick test_set;
        ] );
      ("op", [ Alcotest.test_case "operations" `Quick test_op ]);
      ( "shistory",
        [
          Alcotest.test_case "replay deterministic" `Quick test_shistory_replay;
          Alcotest.test_case "replay nondeterministic" `Quick
            test_shistory_nondet_replay;
        ] );
      ( "listx",
        [
          Alcotest.test_case "range" `Quick test_listx_range;
          Alcotest.test_case "sort_uniq" `Quick test_listx_sort_uniq;
          Alcotest.test_case "interleavings" `Quick test_listx_interleavings;
          Alcotest.test_case "misc" `Quick test_listx_misc;
        ] );
      ( "prng",
        [
          Alcotest.test_case "reproducible" `Quick test_prng_reproducible;
          Alcotest.test_case "split independent" `Quick
            test_prng_split_independent;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "shuffle" `Quick test_prng_shuffle;
        ] );
    ]
